// Package experiments builds the instance families and measurement harness
// that regenerate the paper's evaluation artefacts — Table 8.1 (combined
// complexity) and Table 8.2 (data complexity) — as measured scaling series.
// Each row of the tables maps to a Family: a parameterised instance
// generator plus the solver call whose growth the paper's complexity class
// predicts. cmd/recbench prints the rows; the root bench_test.go exposes
// the same families as testing.B benchmarks; BENCHMARKS.md records a
// reference run of the engine comparisons, and docs/complexity.md indexes
// the rows by theorem.
//
// Beyond the single-solve families, the package samples serving-layer
// traffic: SampleWorkload draws reproducible streams of mixed wire-form
// requests (topk/count/exists/maxbound/decide/relax over the travel
// family) that cmd/recload replays against a live pkgrecd to measure
// throughput and latency under load.
package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/adjust"
	"repro/internal/boolenc"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/pbo"
	"repro/internal/query"
	"repro/internal/reductions"
	"repro/internal/relation"
	"repro/internal/relax"
	"repro/internal/sat"
)

// Family is one experiment row: a parameterised instance family and the
// solver call under measurement.
type Family struct {
	ID         string
	Problem    string // RPP, FRP, MBP, CPP, QRPP, ARPP
	Language   string // CQ/UCQ/∃FO+, DATALOGnr, FO, DATALOG, SP, (any)
	Setting    string // with Qc, no Qc, poly bound, Bp=1, items, ...
	PaperClass string // the complexity class claimed by the paper
	Params     []int
	// Run executes the measured solve for size parameter n. The returned
	// note is displayed beside the sample (e.g. the computed answer).
	Run func(n int) (note string, err error)
}

// ---------------------------------------------------------------------------
// Query families exhibiting the language-driven evaluation growth the
// upper-bound algorithms rely on.
// ---------------------------------------------------------------------------

// prodProgram is the non-recursive family P_d(x1..xd) built by joining the
// Boolean domain d times: |P_d(D)| = 2^d, so bottom-up evaluation grows
// exponentially with the program size — the succinctness that makes
// DATALOGnr evaluation PSPACE-hard.
func prodProgram(d int) *query.Datalog {
	rules := []query.Rule{
		query.NewRule(query.Rel("P1", query.V("x1")), query.Rel(boolenc.R01Name, query.V("x1"))),
	}
	for i := 2; i <= d; i++ {
		var headArgs []query.Term
		var bodyArgs []query.Term
		for j := 1; j < i; j++ {
			headArgs = append(headArgs, query.V(fmt.Sprintf("x%d", j)))
			bodyArgs = append(bodyArgs, query.V(fmt.Sprintf("x%d", j)))
		}
		headArgs = append(headArgs, query.V(fmt.Sprintf("x%d", i)))
		rules = append(rules, query.NewRule(
			query.Rel(fmt.Sprintf("P%d", i), headArgs...),
			query.Rel(fmt.Sprintf("P%d", i-1), bodyArgs...),
			query.Rel(boolenc.R01Name, query.V(fmt.Sprintf("x%d", i)))))
	}
	return query.NewDatalog(fmt.Sprintf("P%d", d), rules...)
}

// counterProgram is the recursive binary-counter family: C holds d-bit
// strings, the base rule derives 0...0 and one increment rule per bit
// position derives the successor, so the fixpoint takes 2^d derivation
// steps — the iteration blow-up behind DATALOG's EXPTIME-completeness.
func counterProgram(d int) *query.Datalog {
	zeros := make([]query.Term, d)
	for i := range zeros {
		zeros[i] = query.CI(0)
	}
	rules := []query.Rule{
		query.NewRule(query.Rel("C", zeros...), query.Rel(boolenc.R01Name, query.V("z"))),
	}
	for i := 0; i < d; i++ {
		// C(x1..xi, 1, 0...0) :- C(x1..xi, 0, 1...1).
		head := make([]query.Term, d)
		body := make([]query.Term, d)
		for j := 0; j < i; j++ {
			v := query.V(fmt.Sprintf("x%d", j))
			head[j], body[j] = v, v
		}
		head[i], body[i] = query.CI(1), query.CI(0)
		for j := i + 1; j < d; j++ {
			head[j], body[j] = query.CI(0), query.CI(1)
		}
		rules = append(rules, query.NewRule(query.Rel("C", head...), query.Rel("C", body...)))
	}
	return query.NewDatalog("C", rules...)
}

// alternatingFO is the quantifier-alternation family
// ∀a1 ∃b1 (E(a1, b1) ∧ ∀a2 ∃b2 (E(a2, b2) ∧ ...)), true on a directed
// cycle; active-domain evaluation explores adom^(2d) branches — the
// alternation that drives FO's PSPACE-completeness.
func alternatingFO(d int) *query.FOQuery {
	f := query.Formula(query.Atomf(query.Eq(query.CI(0), query.CI(0))))
	for i := d; i >= 1; i-- {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		f = query.Forall([]string{a},
			query.Exists([]string{b},
				query.And(query.Atomf(query.Rel("E", query.V(a), query.V(b))), f)))
	}
	return query.NewFO("RQ", nil, f)
}

// cycleDB is a directed cycle of length n.
func cycleDB(n int) *relation.Database {
	r := relation.NewRelation(relation.NewSchema("E", "src", "dst"))
	for i := 0; i < n; i++ {
		if err := r.Insert(relation.Ints(int64(i), int64((i+1)%n))); err != nil {
			panic(err)
		}
	}
	return relation.NewDatabase().Add(r)
}

// BenchCounters is the engine-counter sink the instrumented recbench rows
// (EngineRows, BoundRows) attach to their problems: Run snapshots it
// around each sample, so those rows and the `-json` output report DFS
// nodes visited and subtrees pruned per solve. The shared problem
// constructors deliberately do NOT attach it — the go-bench engine
// benchmarks reuse them and must not pay (or measure) counter-flush
// overhead. The fields are atomics, so the sink is safe to share across
// concurrently running tests.
var BenchCounters core.EngineCounters

// instrument attaches the recbench counter sink to a problem.
func instrument(p *core.Problem) *core.Problem {
	p.Counters = &BenchCounters
	return p
}

// PBOCounters is the pseudo-Boolean backend's counter sink, the pbo
// analogue of BenchCounters: SolverRows compiles its pbo variants against
// it, and Run folds its deltas into each sample — decisions into the nodes
// column (so scripts/bench_gate.sh gates both engines through one metric),
// conflicts and propagations into their own columns. The differential tests
// share it too; the fields are atomics, so concurrent use is safe.
var PBOCounters pbo.Counters

// languageProblem wraps a query family into a minimal package problem:
// singleton packages (cost |N|, C = 1), constant rating, k = 1. All four
// POI problems over it are dominated by the query evaluation cost, which is
// exactly what the language rows of Table 8.1 assert.
func languageProblem(db *relation.Database, q query.Query) *core.Problem {
	return &core.Problem{
		DB: db, Q: q,
		Cost: core.CountOrInf(), Val: core.ConstAgg(1),
		Budget: 1, K: 1,
	}
}

// datalogNRProblem builds the DATALOGnr language family instance.
func datalogNRProblem(d int) *core.Problem {
	return languageProblem(boolenc.NewDB(), prodProgram(d))
}

// datalogProblem builds the recursive DATALOG language family instance.
func datalogProblem(d int) *core.Problem {
	return languageProblem(boolenc.NewDB(), counterProgram(d))
}

// foProblem builds the FO language family instance (Boolean query).
func foProblem(d int) *core.Problem {
	return languageProblem(cycleDB(3), alternatingFO(d))
}

// knownMember returns a tuple guaranteed to be in the family query's
// answer, for RPP candidate selections.
func knownMember(kind string, d int) core.Package {
	switch kind {
	case "prod":
		t := make(relation.Tuple, d)
		for i := range t {
			t[i] = relation.Int(1)
		}
		return core.NewPackage(t)
	case "counter":
		t := make(relation.Tuple, d)
		for i := range t {
			t[i] = relation.Int(0)
		}
		return core.NewPackage(t)
	default: // boolean FO query
		return core.NewPackage(relation.Tuple{})
	}
}

// seededEFDNF/seededCNF/seededPair build deterministic formula instances.
func seededEFDNF(n int) sat.EFDNF {
	return sat.RandEFDNF(rand.New(rand.NewSource(int64(1000+n))), n, n, n+1)
}

func seededCNF(vars, clauses int, seed int64) sat.CNF {
	return sat.Rand3CNF(rand.New(rand.NewSource(seed)), vars, clauses)
}

func seededPair(n int) sat.Pair {
	rng := rand.New(rand.NewSource(int64(2000 + n)))
	return sat.RandPair(rng, n, n, n, n)
}

// ---------------------------------------------------------------------------
// The experiment rows.
// ---------------------------------------------------------------------------

// note formats a boolean/number result for the row display.
func note(v any) string { return fmt.Sprint(v) }

// Table81 returns the combined-complexity families, one group per problem
// row of Table 8.1.
func Table81(quick bool) []Family {
	cqSizes := []int{1, 2, 3}
	pairSizes := []int{2, 3, 4}
	nrSizes := []int{6, 8, 10, 12}
	foSizes := []int{2, 3, 4, 5}
	dlSizes := []int{6, 8, 10, 12}
	if quick {
		cqSizes = []int{1, 2}
		pairSizes = []int{2, 3}
		nrSizes = []int{6, 8}
		foSizes = []int{2, 3}
		dlSizes = []int{6, 8}
	}

	fams := []Family{
		{
			ID: "T81-RPP-CQ-Qc", Problem: "RPP", Language: "CQ/UCQ/∃FO+", Setting: "with Qc",
			PaperClass: "Πp2-complete", Params: cqSizes,
			Run: func(n int) (string, error) {
				prob, sel := reductions.RPPFromEFDNF(seededEFDNF(n))
				ok, _, err := prob.DecideTopK(sel)
				return note(ok), err
			},
		},
		{
			ID: "T81-RPP-CQ-noQc", Problem: "RPP", Language: "CQ/UCQ/∃FO+", Setting: "no Qc",
			PaperClass: "DP-complete", Params: pairSizes,
			Run: func(n int) (string, error) {
				prob, sel := reductions.RPPFromSATUNSAT(seededPair(n))
				ok, _, err := prob.DecideTopK(sel)
				return note(ok), err
			},
		},
		{
			ID: "T81-RPP-DATALOGnr", Problem: "RPP", Language: "DATALOGnr", Setting: "either",
			PaperClass: "PSPACE-complete", Params: nrSizes,
			Run: func(n int) (string, error) {
				prob := datalogNRProblem(n)
				ok, _, err := prob.DecideTopK([]core.Package{knownMember("prod", n)})
				return note(ok), err
			},
		},
		{
			ID: "T81-RPP-FO", Problem: "RPP", Language: "FO", Setting: "either",
			PaperClass: "PSPACE-complete", Params: foSizes,
			Run: func(n int) (string, error) {
				prob := foProblem(n)
				ok, _, err := prob.DecideTopK([]core.Package{knownMember("fo", n)})
				return note(ok), err
			},
		},
		{
			ID: "T81-RPP-DATALOG", Problem: "RPP", Language: "DATALOG", Setting: "either",
			PaperClass: "EXPTIME-complete", Params: dlSizes,
			Run: func(n int) (string, error) {
				prob := datalogProblem(n)
				ok, _, err := prob.DecideTopK([]core.Package{knownMember("counter", n)})
				return note(ok), err
			},
		},

		{
			ID: "T81-FRP-CQ-Qc", Problem: "FRP", Language: "CQ/UCQ/∃FO+", Setting: "with Qc",
			PaperClass: "FPΣp2-complete", Params: cqSizes,
			Run: func(n int) (string, error) {
				ci := reductions.CompatFromEFDNF(seededEFDNF(n))
				_, ok, err := ci.Problem.FindTopK()
				return note(ok), err
			},
		},
		{
			ID: "T81-FRP-CQ-noQc", Problem: "FRP", Language: "CQ/UCQ/∃FO+", Setting: "no Qc (items)",
			PaperClass: "FPNP-complete", Params: pairSizes,
			Run: func(n int) (string, error) {
				c := seededCNF(n+2, n+2, int64(300+n))
				ws := sat.RandWeights(rand.New(rand.NewSource(int64(400+n))), n+2, 10)
				db, q, util := reductions.ItemFRPFromMaxWeightSAT(c, ws)
				items, ok, err := core.TopKItems(db, q, util, 1)
				if err != nil || !ok {
					return note(ok), err
				}
				return note(util(items[0])), nil
			},
		},
		{
			ID: "T81-FRP-DATALOGnr", Problem: "FRP", Language: "DATALOGnr", Setting: "either",
			PaperClass: "FPSPACE(poly)-complete", Params: nrSizes,
			Run: func(n int) (string, error) {
				_, ok, err := datalogNRProblem(n).FindTopK()
				return note(ok), err
			},
		},
		{
			ID: "T81-FRP-FO", Problem: "FRP", Language: "FO", Setting: "either",
			PaperClass: "FPSPACE(poly)-complete", Params: foSizes,
			Run: func(n int) (string, error) {
				_, ok, err := foProblem(n).FindTopK()
				return note(ok), err
			},
		},
		{
			ID: "T81-FRP-DATALOG", Problem: "FRP", Language: "DATALOG", Setting: "either",
			PaperClass: "FEXPTIME(poly)-complete", Params: dlSizes,
			Run: func(n int) (string, error) {
				_, ok, err := datalogProblem(n).FindTopK()
				return note(ok), err
			},
		},

		{
			ID: "T81-MBP-CQ-Qc", Problem: "MBP", Language: "CQ/UCQ/∃FO+", Setting: "with Qc",
			PaperClass: "Dp2-complete", Params: cqSizes,
			Run: func(n int) (string, error) {
				ci := reductions.CompatFromEFDNF(seededEFDNF(n))
				ok, err := ci.Problem.IsMaxBound(1)
				return note(ok), err
			},
		},
		{
			ID: "T81-MBP-CQ-noQc", Problem: "MBP", Language: "CQ/UCQ/∃FO+", Setting: "no Qc (items)",
			PaperClass: "DP-complete", Params: pairSizes,
			Run: func(n int) (string, error) {
				db, q, util, b := reductions.ItemMBPFromSATUNSAT(seededPair(n))
				prob := core.ItemProblem(db, q, util, 1)
				ok, err := prob.IsMaxBound(b)
				return note(ok), err
			},
		},
		{
			ID: "T81-MBP-DATALOGnr", Problem: "MBP", Language: "DATALOGnr", Setting: "either",
			PaperClass: "PSPACE-complete", Params: nrSizes,
			Run: func(n int) (string, error) {
				ok, err := datalogNRProblem(n).IsMaxBound(1)
				return note(ok), err
			},
		},
		{
			ID: "T81-MBP-FO", Problem: "MBP", Language: "FO", Setting: "either",
			PaperClass: "PSPACE-complete", Params: foSizes,
			Run: func(n int) (string, error) {
				ok, err := foProblem(n).IsMaxBound(1)
				return note(ok), err
			},
		},
		{
			ID: "T81-MBP-DATALOG", Problem: "MBP", Language: "DATALOG", Setting: "either",
			PaperClass: "EXPTIME-complete", Params: dlSizes,
			Run: func(n int) (string, error) {
				ok, err := datalogProblem(n).IsMaxBound(1)
				return note(ok), err
			},
		},

		{
			ID: "T81-CPP-CQ-Qc", Problem: "CPP", Language: "CQ/UCQ/∃FO+", Setting: "with Qc",
			PaperClass: "#·coNP-complete", Params: cqSizes,
			Run: func(n int) (string, error) {
				psi := sat.Rand3DNF(rand.New(rand.NewSource(int64(500+n))), 2*n, n+1)
				// A Y-only term keeps some counts positive: ∀X ψ holds at
				// least on the y0 = 1 half of the Y space.
				psi.Terms = append(psi.Terms, sat.Clause{n + 1})
				prob, b := reductions.CPPFromPi1(psi, n, n)
				cnt, err := prob.CountValid(b)
				return note(cnt), err
			},
		},
		{
			ID: "T81-CPP-CQ-noQc", Problem: "CPP", Language: "CQ/UCQ/∃FO+", Setting: "no Qc",
			PaperClass: "#·NP-complete", Params: cqSizes,
			Run: func(n int) (string, error) {
				phi := seededCNF(2*n, n+1, int64(600+n))
				prob, b := reductions.CPPFromSigma1(phi, n, n)
				cnt, err := prob.CountValid(b)
				return note(cnt), err
			},
		},
		{
			ID: "T81-CPP-DATALOGnr", Problem: "CPP", Language: "DATALOGnr", Setting: "either",
			PaperClass: "#·PSPACE-complete", Params: nrSizes,
			Run: func(n int) (string, error) {
				cnt, err := datalogNRProblem(n).CountValid(1)
				return note(cnt), err
			},
		},
		{
			ID: "T81-CPP-DATALOGnr-QBF", Problem: "CPP", Language: "DATALOGnr", Setting: "Thm 5.3 #QBF reduction",
			PaperClass: "#·PSPACE-complete", Params: nrSizes,
			Run: func(n int) (string, error) {
				matrix := seededCNF(n, n, int64(900+n))
				nf := n / 2
				prefix := make([]sat.Quantifier, n-nf)
				for j := range prefix {
					if j%2 == 0 {
						prefix[j] = sat.QForall
					}
				}
				prob, b, err := reductions.CPPFromQBF(matrix, prefix, nf)
				if err != nil {
					return "", err
				}
				cnt, err := prob.CountValid(b)
				return note(cnt), err
			},
		},
		{
			ID: "T81-CPP-FO", Problem: "CPP", Language: "FO", Setting: "either",
			PaperClass: "#·PSPACE-complete", Params: foSizes,
			Run: func(n int) (string, error) {
				cnt, err := foProblem(n).CountValid(1)
				return note(cnt), err
			},
		},
		{
			ID: "T81-CPP-DATALOG", Problem: "CPP", Language: "DATALOG", Setting: "either",
			PaperClass: "#·EXPTIME-complete", Params: dlSizes,
			Run: func(n int) (string, error) {
				cnt, err := datalogProblem(n).CountValid(1)
				return note(cnt), err
			},
		},

		{
			ID: "T81-QRPP-CQ", Problem: "QRPP", Language: "CQ/UCQ/∃FO+", Setting: "with Qc",
			PaperClass: "Σp2-complete", Params: cqSizes,
			Run: func(n int) (string, error) {
				inst, err := reductions.QRPPFromEFDNF(seededEFDNF(n))
				if err != nil {
					return "", err
				}
				_, ok, err := relax.Decide(inst)
				return note(ok), err
			},
		},
		{
			ID: "T81-QRPP-CQ-noQc", Problem: "QRPP", Language: "CQ/UCQ/∃FO+", Setting: "no Qc",
			PaperClass: "NP-complete", Params: cqSizes,
			Run: func(n int) (string, error) {
				inst, err := reductions.QRPPFrom3SAT(seededCNF(n+2, n+1, int64(700+n)))
				if err != nil {
					return "", err
				}
				_, ok, err := relax.Decide(inst)
				return note(ok), err
			},
		},
		{
			ID: "T81-QRPP-DATALOGnr", Problem: "QRPP", Language: "DATALOGnr", Setting: "either",
			PaperClass: "PSPACE-complete", Params: nrSizes,
			Run: func(n int) (string, error) {
				_, ok, err := relax.Decide(relax.Instance{
					Problem: datalogNRProblem(n), Bound: 1, GapBudget: 0})
				return note(ok), err
			},
		},
		{
			ID: "T81-QRPP-DATALOG", Problem: "QRPP", Language: "DATALOG", Setting: "either",
			PaperClass: "EXPTIME-complete", Params: dlSizes,
			Run: func(n int) (string, error) {
				_, ok, err := relax.Decide(relax.Instance{
					Problem: datalogProblem(n), Bound: 1, GapBudget: 0})
				return note(ok), err
			},
		},

		{
			ID: "T81-ARPP-CQ-Qc", Problem: "ARPP", Language: "CQ/UCQ/∃FO+", Setting: "with Qc",
			PaperClass: "Σp2-complete", Params: cqSizes,
			Run: func(n int) (string, error) {
				inst := reductions.ARPPFromEFDNF(seededEFDNF(n))
				_, ok, err := adjust.Decide(inst)
				return note(ok), err
			},
		},
		{
			ID: "T81-ARPP-DATALOGnr", Problem: "ARPP", Language: "DATALOGnr", Setting: "either",
			PaperClass: "PSPACE-complete", Params: nrSizes,
			Run: func(n int) (string, error) {
				_, ok, err := adjust.Decide(adjust.Instance{
					Problem: datalogNRProblem(n), Bound: 1, KPrime: 0})
				return note(ok), err
			},
		},
		{
			ID: "T81-ARPP-DATALOG", Problem: "ARPP", Language: "DATALOG", Setting: "either",
			PaperClass: "EXPTIME-complete", Params: dlSizes,
			Run: func(n int) (string, error) {
				_, ok, err := adjust.Decide(adjust.Instance{
					Problem: datalogProblem(n), Bound: 1, KPrime: 0})
				return note(ok), err
			},
		},
	}
	return fams
}

// Table82 returns the data-complexity families: fixed queries over growing
// databases, in the poly-bounded and constant-bounded package settings.
func Table82(quick bool) []Family {
	rs := []int{2, 3, 4, 5}
	travelSizes := []int{40, 80, 160, 320}
	if quick {
		rs = []int{2, 3}
		travelSizes = []int{40, 80}
	}
	fams := []Family{
		{
			ID: "T82-RPP-poly", Problem: "RPP", Language: "fixed Q (SP)", Setting: "poly bound",
			PaperClass: "coNP-complete", Params: rs,
			Run: func(r int) (string, error) {
				prob, sel := reductions.RPPFrom3SAT(seededCNF(r+2, r, int64(800+r)))
				ok, _, err := prob.DecideTopK(sel)
				return note(ok), err
			},
		},
		{
			ID: "T82-FRP-poly", Problem: "FRP", Language: "fixed Q (SP)", Setting: "poly bound",
			PaperClass: "FPNP-complete", Params: rs,
			Run: func(r int) (string, error) {
				c := seededCNF(r+2, r, int64(810+r))
				ws := sat.RandWeights(rand.New(rand.NewSource(int64(820+r))), r, 10)
				prob := reductions.FRPFromMaxWeightSAT(c, ws)
				sel, ok, err := prob.FindTopK()
				if err != nil || !ok {
					return note(ok), err
				}
				return note(prob.Val.Eval(sel[0])), nil
			},
		},
		{
			ID: "T82-MBP-poly", Problem: "MBP", Language: "fixed Q (SP)", Setting: "poly bound",
			PaperClass: "DP-complete", Params: rs,
			Run: func(r int) (string, error) {
				prob, b := reductions.MBPFromSATUNSAT(sat.RandPair(
					rand.New(rand.NewSource(int64(830+r))), r+2, (r+1)/2, r+2, (r+1)/2))
				ok, err := prob.IsMaxBound(b)
				return note(ok), err
			},
		},
		{
			ID: "T82-CPP-poly", Problem: "CPP", Language: "fixed Q (SP)", Setting: "poly bound",
			PaperClass: "#·P-complete", Params: rs,
			Run: func(r int) (string, error) {
				prob, b := reductions.CPPFrom3SAT(seededCNF(r+2, r, int64(840+r)))
				cnt, err := prob.CountValid(b)
				return note(cnt), err
			},
		},
		{
			ID: "T82-QRPP-poly", Problem: "QRPP", Language: "fixed Q (SP)", Setting: "poly bound",
			PaperClass: "NP-complete", Params: rs,
			Run: func(r int) (string, error) {
				inst, err := reductions.QRPPFrom3SAT(seededCNF(r+2, r, int64(850+r)))
				if err != nil {
					return "", err
				}
				_, ok, err := relax.Decide(inst)
				return note(ok), err
			},
		},
		{
			ID: "T82-ARPP-poly", Problem: "ARPP", Language: "fixed Q", Setting: "items (Cor 8.2)",
			PaperClass: "NP-complete", Params: []int{2, 3},
			Run: func(r int) (string, error) {
				c := seededCNF(3, r, int64(860+r)).Compact()
				inst, _ := reductions.ItemARPPFrom3SAT(c)
				_, ok, err := adjust.Decide(inst)
				return note(ok), err
			},
		},
	}
	// Constant-bound rows (Corollary 6.1): fixed travel query, growing |D|,
	// Bp = 2. Runtime must grow polynomially.
	constRow := func(id, problem, class string, run func(p *core.Problem) (string, error)) Family {
		return Family{
			ID: id, Problem: problem, Language: "fixed Q (CQ)", Setting: "Bp=2",
			PaperClass: class, Params: travelSizes,
			Run: func(n int) (string, error) {
				prob := travelProblem(n).WithMaxSize(2)
				return run(prob)
			},
		}
	}
	fams = append(fams,
		constRow("T82-RPP-const", "RPP", "PTIME", func(p *core.Problem) (string, error) {
			sel, ok, err := p.FindTopK()
			if err != nil || !ok {
				return note(ok), err
			}
			ok2, _, err := p.DecideTopK(sel)
			return note(ok2), err
		}),
		constRow("T82-FRP-const", "FRP", "FP", func(p *core.Problem) (string, error) {
			_, ok, err := p.FindTopK()
			return note(ok), err
		}),
		constRow("T82-MBP-const", "MBP", "PTIME", func(p *core.Problem) (string, error) {
			b, ok, err := p.MaxBound()
			if err != nil || !ok {
				return note(ok), err
			}
			return note(b), nil
		}),
		constRow("T82-CPP-const", "CPP", "FP", func(p *core.Problem) (string, error) {
			cnt, err := p.CountValid(0)
			return note(cnt), err
		}),
	)
	return fams
}

// HardCPPProblem exposes the Theorem 5.3 counting family at clause count r
// for the parallel-counting ablation bench.
func HardCPPProblem(r int) *core.Problem {
	prob, _ := reductions.CPPFrom3SAT(seededCNF(r+2, r, int64(840+r)))
	return prob
}

// Sigma1CPPProblem exposes the #Σ1SAT counting family (the Table 8.1 CPP
// row without Qc) at parameter r, with its counting bound, for the engine
// benchmarks and the serial/parallel comparison rows.
func Sigma1CPPProblem(r int) (*core.Problem, float64) {
	return reductions.CPPFromSigma1(seededCNF(2*r, r+1, int64(600+r)), r, r)
}

// TravelProblem exposes the fixed-query travel workload (the Table 8.2
// data-complexity family) for the engine benchmarks.
func TravelProblem(nPOI int) *core.Problem { return travelProblem(nPOI) }

// EquivCase is one instance used by the serial/parallel equivalence tests
// and the engine-comparison rows: a fresh problem constructor (memoised
// candidate caches are per-instance) plus the CPP/ExistsKValid bound.
type EquivCase struct {
	Name  string
	Prob  func() *core.Problem
	Bound float64
}

// EquivCases draws one instance from each structurally distinct family the
// tables exercise: SP reductions with a Prune hint, the Figure 4.1 CQ
// machinery with and without Qc, the Datalog/FO language families, the
// realistic travel workload (poly- and constant-bounded), and the item
// embedding. The parallel engine must agree with the serial one on all of
// them.
func EquivCases(quick bool) []EquivCase {
	r, d := 3, 8
	travel := 40
	if quick {
		r, d = 2, 6
	}
	return []EquivCase{
		{Name: "CPP-3SAT-SP", Prob: func() *core.Problem {
			prob, _ := reductions.CPPFrom3SAT(seededCNF(r+2, r, int64(840+r)))
			return prob
		}, Bound: float64(r)},
		{Name: "CPP-Sigma1-CQ", Prob: func() *core.Problem {
			prob, _ := reductions.CPPFromSigma1(seededCNF(2*r, r+1, int64(600+r)), r, r)
			return prob
		}, Bound: 1},
		{Name: "FRP-EFDNF-Qc", Prob: func() *core.Problem {
			return reductions.CompatFromEFDNF(seededEFDNF(2)).Problem
		}, Bound: 1},
		{Name: "DATALOGnr", Prob: func() *core.Problem {
			return datalogNRProblem(d)
		}, Bound: 1},
		{Name: "FO-alternation", Prob: func() *core.Problem {
			return foProblem(2)
		}, Bound: 1},
		{Name: "travel-poly", Prob: func() *core.Problem {
			p := travelProblem(travel)
			p.MaxPkgSize = 3
			return p
		}, Bound: 0},
		{Name: "travel-Bp2", Prob: func() *core.Problem {
			return travelProblem(4 * travel).WithMaxSize(2)
		}, Bound: 0},
		{Name: "items", Prob: func() *core.Problem {
			p := travelProblem(travel)
			return core.ItemProblem(p.DB, p.Q, core.UtilityNegAttr(2), 3)
		}, Bound: -100},
	}
}

// EngineRows returns the solver-engine comparison rows behind the
// `recbench -table par` run: the same Table 8.1/8.2 families solved by the
// seed-style serial engine and by the parallel + incremental engine with
// the given worker count (0 = GOMAXPROCS).
func EngineRows(quick bool, workers int) []Family {
	rs := []int{3, 4, 5}
	travelSizes := []int{160, 320, 640}
	if quick {
		rs = []int{3, 4}
		travelSizes = []int{160, 320}
	}
	cppProb := func(r int) (*core.Problem, float64) {
		prob, b := Sigma1CPPProblem(r)
		return instrument(prob), b
	}
	frpProb := func(n int) *core.Problem {
		return instrument(travelProblem(n).WithMaxSize(2))
	}
	return []Family{
		{
			ID: "PAR-CPP-serial", Problem: "CPP", Language: "CQ/UCQ/∃FO+", Setting: "T81 #Σ1SAT, serial",
			PaperClass: "#·NP-complete", Params: rs,
			Run: func(r int) (string, error) {
				prob, b := cppProb(r)
				cnt, err := prob.CountValid(b)
				return note(cnt), err
			},
		},
		{
			ID: "PAR-CPP-parallel", Problem: "CPP", Language: "CQ/UCQ/∃FO+", Setting: "T81 #Σ1SAT, parallel",
			PaperClass: "#·NP-complete", Params: rs,
			Run: func(r int) (string, error) {
				prob, b := cppProb(r)
				cnt, err := prob.CountValidParallel(b, workers)
				return note(cnt), err
			},
		},
		{
			ID: "PAR-FRP-serial", Problem: "FRP", Language: "fixed Q (CQ)", Setting: "T82 travel Bp=2, serial",
			PaperClass: "FP", Params: travelSizes,
			Run: func(n int) (string, error) {
				_, ok, err := frpProb(n).FindTopK()
				return note(ok), err
			},
		},
		{
			ID: "PAR-FRP-parallel", Problem: "FRP", Language: "fixed Q (CQ)", Setting: "T82 travel Bp=2, parallel",
			PaperClass: "FP", Params: travelSizes,
			Run: func(n int) (string, error) {
				_, ok, err := frpProb(n).FindTopKParallel(workers)
				return note(ok), err
			},
		},
		{
			ID: "PAR-RPP-parallel", Problem: "RPP", Language: "fixed Q (CQ)", Setting: "witness search, parallel",
			PaperClass: "PTIME (Bp=2)", Params: travelSizes,
			Run: func(n int) (string, error) {
				prob := frpProb(n)
				sel, ok, err := prob.FindTopKParallel(workers)
				if err != nil || !ok {
					return note(ok), err
				}
				ok, _, err = prob.DecideTopKParallel(sel, workers)
				return note(ok), err
			},
		},
		{
			ID: "PAR-EXISTS-parallel", Problem: "QRPP/ARPP core", Language: "fixed Q (CQ)", Setting: "∃k-valid, parallel",
			PaperClass: "NP feasibility", Params: travelSizes,
			Run: func(n int) (string, error) {
				ok, err := frpProb(n).ExistsKValidParallel(2, -100, workers)
				return note(ok), err
			},
		},
	}
}

// travelRelaxInstance is the QRPP workload behind `recbench -table relax`:
// packages of nyc POIs with ticket price exactly 7, the price relaxable
// under the absolute-difference metric. The gap levels discretize over the
// whole ticket column — every city's prices — but only nyc tuples can ever
// enter the candidate set, so levels minted by tickets that exist only
// outside nyc admit nothing new: the candidate list repeats, and the
// incremental session answers those probes from its memo where the
// reference loop re-solves each one. The rating bound is unreachable
// (NegSum of non-negative tickets never exceeds 0), so the whole lattice
// is probed — the loop's worst case.
func travelRelaxInstance(nPOI int) (relax.Instance, error) {
	db := gen.Travel(9, 20, nPOI)
	v := query.V
	q := query.NewCQ("RQ",
		[]query.Term{v("name"), v("type"), v("ticket"), v("time")},
		query.Rel("poi", v("name"), v("city"), v("type"), v("ticket"), v("time")),
		query.Eq(v("city"), query.CS("nyc")),
		query.Eq(v("ticket"), query.CI(7)))
	prob := instrument(&core.Problem{
		DB: db, Q: q,
		Cost:   core.SumAttr(3).WithMonotone(),
		Val:    core.NegSumAttr(2),
		Budget: 400,
		K:      2,
	})
	pts, err := relax.Points(q)
	if err != nil {
		return relax.Instance{}, err
	}
	return relax.Instance{
		Problem:   prob,
		Points:    []relax.Point{pts[1].WithMetric(relax.AbsDiff())},
		Bound:     0.5,
		GapBudget: 12,
	}, nil
}

// RelaxRows returns the QRPP engine comparison rows behind
// `recbench -table relax`: the same relaxation workload answered by the
// reference per-assignment loop (relax.DecideLoop — one fresh ∃k-valid
// solve per lattice assignment) and by the incremental suggestion engine
// (relax.Decide — one core.SolveSession shared across the lattice, see
// internal/relax/suggest.go). Answers are bit-identical; the session row
// visits strictly fewer engine nodes, and its resumes column counts the
// probes answered from the session memo — the numbers BENCHMARKS.md's
// relaxation section records, guarded by scripts/bench_gate.sh.
func RelaxRows(quick bool) []Family {
	travelSizes := []int{160, 320, 640}
	if quick {
		travelSizes = []int{160, 320}
	}
	return []Family{
		{
			ID: "RELAX-travel-loop", Problem: "QRPP", Language: "fixed Q (CQ)", Setting: "reference re-solve loop",
			PaperClass: "NP (no Qc)", Params: travelSizes,
			Run: func(n int) (string, error) {
				inst, err := travelRelaxInstance(n)
				if err != nil {
					return "", err
				}
				_, ok, err := relax.DecideLoop(inst)
				return note(ok), err
			},
		},
		{
			ID: "RELAX-travel-session", Problem: "QRPP", Language: "fixed Q (CQ)", Setting: "incremental session",
			PaperClass: "NP (no Qc)", Params: travelSizes,
			Run: func(n int) (string, error) {
				inst, err := travelRelaxInstance(n)
				if err != nil {
					return "", err
				}
				_, ok, err := relax.Decide(inst)
				return note(ok), err
			},
		},
	}
}

// BoundRows returns the Pruned-vs-Exhaustive comparison rows behind
// `recbench -table bb`: the same instance solved by the branch-and-bound
// engine (the default) and with the bound layer disabled
// (Problem.Exhaustive), on families where a live floor exists — FRP's k-th
// best rating, MBP's bound, CPP's counting threshold, and the item
// embedding's depth-one collapse. Both variants are instrumented, so the
// rendered rows (and the -json artifact) carry nodes-visited and
// subtrees-pruned per sample; the per-family speedup is the pruning story
// BENCHMARKS.md records.
func BoundRows(quick bool) []Family {
	travelSizes := []int{160, 320, 640}
	if quick {
		travelSizes = []int{160, 320}
	}
	frp := func(n int, exhaustive bool) *core.Problem {
		p := instrument(travelProblem(n).WithMaxSize(2))
		p.Exhaustive = exhaustive
		return p
	}
	poly := func(n int, exhaustive bool) *core.Problem {
		p := instrument(travelProblem(n))
		p.MaxPkgSize = 3
		p.Exhaustive = exhaustive
		return p
	}
	items := func(n int, exhaustive bool) *core.Problem {
		p := travelProblem(n)
		ip := instrument(core.ItemProblem(p.DB, p.Q, core.UtilityNegAttr(2), 3))
		ip.Exhaustive = exhaustive
		return ip
	}
	variant := func(id, problem, setting string, run func(n int) (string, error)) Family {
		return Family{
			ID: id, Problem: problem, Language: "fixed Q (CQ)", Setting: setting,
			PaperClass: "FP / #·P", Params: travelSizes, Run: run,
		}
	}
	return []Family{
		variant("BB-FRP-pruned", "FRP", "travel Bp=2, branch-and-bound", func(n int) (string, error) {
			_, ok, err := frp(n, false).FindTopK()
			return note(ok), err
		}),
		variant("BB-FRP-exhaustive", "FRP", "travel Bp=2, exhaustive", func(n int) (string, error) {
			_, ok, err := frp(n, true).FindTopK()
			return note(ok), err
		}),
		variant("BB-MBP-pruned", "MBP", "travel Bp=2, branch-and-bound", func(n int) (string, error) {
			b, ok, err := frp(n, false).MaxBound()
			if err != nil || !ok {
				return note(ok), err
			}
			return note(b), nil
		}),
		variant("BB-MBP-exhaustive", "MBP", "travel Bp=2, exhaustive", func(n int) (string, error) {
			b, ok, err := frp(n, true).MaxBound()
			if err != nil || !ok {
				return note(ok), err
			}
			return note(b), nil
		}),
		variant("BB-CPP-pruned", "CPP", "travel ≤3 POIs, B=-10, branch-and-bound", func(n int) (string, error) {
			cnt, err := poly(n, false).CountValid(-10)
			return note(cnt), err
		}),
		variant("BB-CPP-exhaustive", "CPP", "travel ≤3 POIs, B=-10, exhaustive", func(n int) (string, error) {
			cnt, err := poly(n, true).CountValid(-10)
			return note(cnt), err
		}),
		variant("BB-items-pruned", "FRP", "item embedding, branch-and-bound", func(n int) (string, error) {
			_, ok, err := items(n, false).FindTopK()
			return note(ok), err
		}),
		variant("BB-items-exhaustive", "FRP", "item embedding, exhaustive", func(n int) (string, error) {
			_, ok, err := items(n, true).FindTopK()
			return note(ok), err
		}),
	}
}

// SolverRows returns the backend comparison rows behind
// `recbench -table solver`: the same instance solved by the default
// branch-and-bound engine and by the pseudo-Boolean backend (pbo.Compile),
// on the travel FRP/CPP data-complexity families and the Σ1-reduction CPP
// family. Both variants are instrumented — the bb rows report DFS nodes and
// prunes, the pbo rows report PB decisions (in the same nodes column) plus
// conflicts and propagations — so BENCH_baseline.json carries a gateable
// per-backend cost series and the rendered table is a direct
// search-discipline comparison.
func SolverRows(quick bool) []Family {
	rs := []int{3, 4, 5}
	travelSizes := []int{160, 320, 640}
	if quick {
		rs = []int{3, 4}
		travelSizes = []int{160, 320}
	}
	frp := func(n int) *core.Problem { return travelProblem(n).WithMaxSize(2) }
	poly := func(n int) *core.Problem {
		p := travelProblem(n)
		p.MaxPkgSize = 3
		return p
	}
	row := func(id, problem, setting, class string, params []int, run func(n int) (string, error)) Family {
		lang := "fixed Q (CQ)"
		if params[0] == rs[0] {
			lang = "CQ/UCQ/∃FO+"
		}
		return Family{
			ID: id, Problem: problem, Language: lang, Setting: setting,
			PaperClass: class, Params: params, Run: run,
		}
	}
	return []Family{
		row("SOLVER-FRP-TRAVEL-bb", "FRP", "travel Bp=2, branch-and-bound", "FP", travelSizes,
			func(n int) (string, error) {
				_, ok, err := instrument(frp(n)).FindTopK()
				return note(ok), err
			}),
		row("SOLVER-FRP-TRAVEL-pbo", "FRP", "travel Bp=2, pseudo-Boolean", "FP", travelSizes,
			func(n int) (string, error) {
				comp, err := pbo.Compile(frp(n), &PBOCounters)
				if err != nil {
					return "", err
				}
				_, ok, err := comp.FindTopKCtx(context.Background())
				return note(ok), err
			}),
		row("SOLVER-CPP-TRAVEL-bb", "CPP", "travel ≤3 POIs, B=-10, branch-and-bound", "#·P", travelSizes,
			func(n int) (string, error) {
				cnt, err := instrument(poly(n)).CountValid(-10)
				return note(cnt), err
			}),
		row("SOLVER-CPP-TRAVEL-pbo", "CPP", "travel ≤3 POIs, B=-10, pseudo-Boolean", "#·P", travelSizes,
			func(n int) (string, error) {
				comp, err := pbo.Compile(poly(n), &PBOCounters)
				if err != nil {
					return "", err
				}
				cnt, err := comp.CountValidCtx(context.Background(), -10)
				return note(cnt), err
			}),
		row("SOLVER-CPP-3SAT-bb", "CPP", "T81 #Σ1SAT, branch-and-bound", "#·NP-complete", rs,
			func(r int) (string, error) {
				prob, b := Sigma1CPPProblem(r)
				cnt, err := instrument(prob).CountValid(b)
				return note(cnt), err
			}),
		row("SOLVER-CPP-3SAT-pbo", "CPP", "T81 #Σ1SAT, pseudo-Boolean", "#·NP-complete", rs,
			func(r int) (string, error) {
				prob, b := Sigma1CPPProblem(r)
				comp, err := pbo.Compile(prob, &PBOCounters)
				if err != nil {
					return "", err
				}
				cnt, err := comp.CountValidCtx(context.Background(), b)
				return note(cnt), err
			}),
	}
}

// travelProblem is the fixed-query data-complexity workload: nyc POI
// packages over a growing travel database.
func travelProblem(nPOI int) *core.Problem {
	db := gen.Travel(9, 20, nPOI)
	v := query.V
	q := query.NewCQ("RQ",
		[]query.Term{v("name"), v("type"), v("ticket"), v("time")},
		query.Rel("poi", v("name"), v("city"), v("type"), v("ticket"), v("time")),
		query.Eq(v("city"), query.CS("nyc")))
	return &core.Problem{
		DB: db, Q: q,
		Cost:   core.SumAttr(3).WithMonotone(),
		Val:    core.NegSumAttr(2),
		Budget: 400,
		K:      2,
	}
}

// Ablations returns the design-choice ablation rows ARCHITECTURE.md's
// Design notes call out:
// oracle-based vs exhaustive FRP, Qc-as-query vs PTIME CompatFn
// (Corollary 6.3), packages vs items (Theorem 6.4), and SP variable- vs
// fixed-size (Corollary 6.2).
func Ablations(quick bool) []Family {
	rs := []int{2, 3, 4}
	if quick {
		rs = []int{2, 3}
	}
	return []Family{
		{
			ID: "ABL-FRP-oracle", Problem: "FRP", Language: "fixed Q (SP)", Setting: "oracle algorithm (Thm 5.1)",
			PaperClass: "FPNP via binary search", Params: rs,
			Run: func(r int) (string, error) {
				c := seededCNF(r+2, r, int64(810+r))
				ws := sat.RandWeights(rand.New(rand.NewSource(int64(820+r))), r, 10)
				prob := reductions.FRPFromMaxWeightSAT(c, ws)
				var hi int64
				for _, w := range ws {
					hi += w
				}
				sel, ok, err := prob.FindTopKViaOracle(0, hi)
				if err != nil || !ok {
					return note(ok), err
				}
				return note(prob.Val.Eval(sel[0])), nil
			},
		},
		{
			ID: "ABL-Qc-ptime", Problem: "RPP", Language: "CQ", Setting: "PTIME CompatFn (Cor 6.3)",
			PaperClass: "same as no-Qc", Params: []int{40, 80, 160},
			Run: func(n int) (string, error) {
				prob := travelProblem(n).WithMaxSize(2)
				prob.CompatFn = func(p core.Package, _ *relation.Database) (bool, error) {
					// At most one museum per package.
					museums := 0
					for _, t := range p.Tuples() {
						if t[1].Equal(relation.Str("museum")) {
							museums++
						}
					}
					return museums <= 1, nil
				}
				_, ok, err := prob.FindTopK()
				return note(ok), err
			},
		},
		{
			ID: "ABL-SP-variable", Problem: "CPP", Language: "SP", Setting: "variable size (Cor 6.2)",
			PaperClass: "#·P-complete", Params: rs,
			Run: func(r int) (string, error) {
				prob, b := reductions.CPPFrom3SAT(seededCNF(r+2, r, int64(840+r)))
				cnt, err := prob.CountValid(b)
				return note(cnt), err
			},
		},
		{
			ID: "ABL-SP-fixed", Problem: "CPP", Language: "SP", Setting: "Bp=2 (Cor 6.2)",
			PaperClass: "FP", Params: rs,
			Run: func(r int) (string, error) {
				prob, _ := reductions.CPPFrom3SAT(seededCNF(r+2, r, int64(840+r)))
				cnt, err := prob.WithMaxSize(2).CountValid(0)
				return note(cnt), err
			},
		},
		{
			ID: "ABL-items", Problem: "FRP", Language: "CQ", Setting: "items (Thm 6.4)",
			PaperClass: "data complexity FP", Params: []int{40, 80, 160},
			Run: func(n int) (string, error) {
				prob := travelProblem(n)
				items, ok, err := core.TopKItems(prob.DB, prob.Q, core.UtilityNegAttr(2), 3)
				if err != nil || !ok {
					return note(ok), err
				}
				return note(len(items)), nil
			},
		},
	}
}
