package parser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/query"
	"repro/internal/relation"
)

// parser consumes a token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return token{}, fmt.Errorf("parser: line %d: expected %s, found %s", t.line, what, t)
	}
	return p.advance(), nil
}

// Parse parses a query in either rule form or formula form and classifies
// it: one rule over extensional predicates parses as a CQ (or SP), several
// rules with a common head as a UCQ, programs with intensional body
// predicates as DATALOGnr or DATALOG, and formula-form queries as ∃FO+ when
// positive or FO otherwise. The first rule's head predicate is the output.
func Parse(src string) (query.Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	// Look ahead to decide the form: head ident, args, then ':-' or ':='.
	form, err := p.detectForm()
	if err != nil {
		return nil, err
	}
	if form == tokFormulaDef {
		return p.parseFormulaQuery()
	}
	return p.parseRuleQuery()
}

// Canonicalize parses src and re-renders it through the query's String
// method, which lays atoms, rules and connectives out deterministically from
// the parsed structure. Whitespace, line breaks and other formatting
// differences vanish, so two sources with equal canonical text denote the
// same query — the property the serving layer's result-cache keys rely on
// (internal/spec builds its fingerprints from this form).
func Canonicalize(src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	return q.String(), nil
}

// detectForm scans ahead for the first ':-' or ':=' token.
func (p *parser) detectForm() (tokenKind, error) {
	for _, t := range p.toks {
		if t.kind == tokRuleDef || t.kind == tokFormulaDef {
			return t.kind, nil
		}
		if t.kind == tokEOF {
			break
		}
	}
	return tokEOF, fmt.Errorf("parser: no ':-' or ':=' definition found")
}

// parseTerm parses a variable or constant.
func (p *parser) parseTerm() (query.Term, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		p.advance()
		return query.V(t.text), nil
	case tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return query.Term{}, fmt.Errorf("parser: line %d: bad number %q", t.line, t.text)
			}
			return query.C(relation.Float(f)), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return query.Term{}, fmt.Errorf("parser: line %d: bad number %q", t.line, t.text)
		}
		return query.C(relation.Int(i)), nil
	case tokString:
		p.advance()
		return query.C(relation.Str(t.text)), nil
	default:
		return query.Term{}, fmt.Errorf("parser: line %d: expected a term, found %s", t.line, t)
	}
}

// parseTermList parses '(' term, ..., term ')' (possibly empty).
func (p *parser) parseTermList() ([]query.Term, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var terms []query.Term
	if p.peek().kind == tokRParen {
		p.advance()
		return terms, nil
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		switch p.peek().kind {
		case tokComma:
			p.advance()
		case tokRParen:
			p.advance()
			return terms, nil
		default:
			return nil, fmt.Errorf("parser: line %d: expected ',' or ')', found %s", p.peek().line, p.peek())
		}
	}
}

// cmpOps maps comparison spellings.
var cmpOps = map[string]query.CmpOp{
	"=": query.OpEq, "!=": query.OpNe,
	"<": query.OpLt, "<=": query.OpLe,
	">": query.OpGt, ">=": query.OpGe,
}

// parseBodyAtom parses a relation atom or comparison inside a rule body.
func (p *parser) parseBodyAtom() (query.Atom, error) {
	t := p.peek()
	if t.kind == tokIdent && p.toks[p.pos+1].kind == tokLParen {
		p.advance()
		args, err := p.parseTermList()
		if err != nil {
			return nil, err
		}
		return query.Rel(t.text, args...), nil
	}
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	op, err := p.expect(tokCmp, "a comparison operator")
	if err != nil {
		return nil, err
	}
	right, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return query.Cmp(left, cmpOps[op.text], right), nil
}

// rule is an unclassified parsed rule.
type rule struct {
	headPred string
	headArgs []query.Term
	body     []query.Atom
}

// parseRuleQuery parses one or more rules and classifies the program.
func (p *parser) parseRuleQuery() (query.Query, error) {
	var rules []rule
	for p.peek().kind != tokEOF {
		head, err := p.expect(tokIdent, "a head predicate")
		if err != nil {
			return nil, err
		}
		args, err := p.parseTermList()
		if err != nil {
			return nil, err
		}
		r := rule{headPred: head.text, headArgs: args}
		if p.peek().kind == tokRuleDef {
			p.advance()
			for {
				a, err := p.parseBodyAtom()
				if err != nil {
					return nil, err
				}
				r.body = append(r.body, a)
				if p.peek().kind == tokComma {
					p.advance()
					continue
				}
				break
			}
		}
		if _, err := p.expect(tokDot, "'.' at end of rule"); err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("parser: empty program")
	}
	return classifyRules(rules)
}

// classifyRules picks the weakest language that fits: CQ, UCQ, or datalog.
func classifyRules(rules []rule) (query.Query, error) {
	heads := map[string]bool{}
	for _, r := range rules {
		heads[r.headPred] = true
	}
	usesIDB := false
	for _, r := range rules {
		for _, a := range r.body {
			if ra, ok := a.(*query.RelAtom); ok && heads[ra.Pred] {
				usesIDB = true
			}
		}
	}
	output := rules[0].headPred
	if !usesIDB && len(heads) == 1 {
		if len(rules) == 1 {
			return query.NewCQ(output, rules[0].headArgs, rules[0].body...), nil
		}
		disjuncts := make([]*query.CQ, len(rules))
		for i, r := range rules {
			disjuncts[i] = query.NewCQ(fmt.Sprintf("%s_%d", output, i+1), r.headArgs, r.body...)
		}
		return query.NewUCQ(output, disjuncts...), nil
	}
	dl := make([]query.Rule, len(rules))
	for i, r := range rules {
		dl[i] = query.NewRule(query.Rel(r.headPred, r.headArgs...), r.body...)
	}
	return query.NewDatalog(output, dl...), nil
}

// parseFormulaQuery parses Q(vars) := formula.
func (p *parser) parseFormulaQuery() (query.Query, error) {
	head, err := p.expect(tokIdent, "a head predicate")
	if err != nil {
		return nil, err
	}
	args, err := p.parseTermList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokFormulaDef, "':='"); err != nil {
		return nil, err
	}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokDot {
		p.advance()
	}
	if _, err := p.expect(tokEOF, "end of input"); err != nil {
		return nil, err
	}
	q := query.NewEFOPlus(head.text, args, f)
	if q.Validate() == nil {
		return q, nil
	}
	return query.NewFO(head.text, args, f), nil
}

// parseFormula: implication (right-associative, lowest precedence).
func (p *parser) parseFormula() (query.Formula, error) {
	left, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokImplies {
		p.advance()
		right, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		return query.Implies(left, right), nil
	}
	return left, nil
}

func (p *parser) parseOr() (query.Formula, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	subs := []query.Formula{left}
	for p.peek().kind == tokOr {
		p.advance()
		next, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return left, nil
	}
	return query.Or(subs...), nil
}

func (p *parser) parseAnd() (query.Formula, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	subs := []query.Formula{left}
	for p.peek().kind == tokAnd {
		p.advance()
		next, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return left, nil
	}
	return query.And(subs...), nil
}

func (p *parser) parseUnary() (query.Formula, error) {
	t := p.peek()
	switch {
	case t.kind == tokNot:
		p.advance()
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return query.Not(sub), nil
	case t.kind == tokIdent && (t.text == "exists" || t.text == "forall"):
		p.advance()
		var vars []string
		for {
			v, err := p.expect(tokIdent, "a quantified variable")
			if err != nil {
				return nil, err
			}
			vars = append(vars, v.text)
			if p.peek().kind == tokComma {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(tokLParen, "'(' after quantifier"); err != nil {
			return nil, err
		}
		sub, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		if t.text == "exists" {
			return query.Exists(vars, sub), nil
		}
		return query.Forall(vars, sub), nil
	case t.kind == tokLParen:
		p.advance()
		sub, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return sub, nil
	case t.kind == tokIdent && p.toks[p.pos+1].kind == tokLParen:
		p.advance()
		args, err := p.parseTermList()
		if err != nil {
			return nil, err
		}
		return query.Atomf(query.Rel(t.text, args...)), nil
	default:
		// Comparison atom.
		left, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		op, err := p.expect(tokCmp, "a comparison operator")
		if err != nil {
			return nil, err
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return query.Atomf(query.Cmp(left, cmpOps[op.text], right)), nil
	}
}
