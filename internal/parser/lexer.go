// Package parser parses the textual query syntax used by the command-line
// tools, the serving layer's wire format and the tests, and re-renders
// parsed queries into a canonical form (Canonicalize) for cache
// fingerprints. Two forms are supported, mirroring the paper's language
// lattice:
//
// Rule form (CQ / UCQ / DATALOGnr / DATALOG, auto-classified):
//
//	Q(x, y) :- R(x, z), S(z, y), x < 5, z != "a".
//	Q(x, y) :- T(x, y).
//
// Formula form (∃FO+ / FO, auto-classified by positivity):
//
//	Q(x) := exists y (R(x, y) & !S(y)) | forall z (T(z) -> U(x, z)).
//
// Comments run from '%' or '#' to end of line. Constants are integers,
// floats, or double-quoted strings.
package parser

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokRuleDef    // :-
	tokFormulaDef // :=
	tokCmp        // < <= > >= = !=
	tokAnd        // &
	tokOr         // |
	tokNot        // !
	tokImplies    // ->
)

// token is one lexeme with its source position.
type token struct {
	kind tokenKind
	text string
	pos  int
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenises the input.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenises the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("parser: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '%' || c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto lexStart
		}
	}
lexStart:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos, line: l.line}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	mk := func(kind tokenKind) token {
		return token{kind: kind, text: l.src[start:l.pos], pos: start, line: l.line}
	}
	switch {
	case c == '(':
		l.pos++
		return mk(tokLParen), nil
	case c == ')':
		l.pos++
		return mk(tokRParen), nil
	case c == ',':
		l.pos++
		return mk(tokComma), nil
	case c == '.':
		l.pos++
		return mk(tokDot), nil
	case c == '&':
		l.pos++
		return mk(tokAnd), nil
	case c == '|':
		l.pos++
		return mk(tokOr), nil
	case c == ':':
		l.pos++
		switch l.peekByte() {
		case '-':
			l.pos++
			return mk(tokRuleDef), nil
		case '=':
			l.pos++
			return mk(tokFormulaDef), nil
		default:
			return token{}, l.errf("expected ':-' or ':=' after ':'")
		}
	case c == '<' || c == '>':
		l.pos++
		if l.peekByte() == '=' {
			l.pos++
		}
		return mk(tokCmp), nil
	case c == '=':
		l.pos++
		return mk(tokCmp), nil
	case c == '!':
		l.pos++
		if l.peekByte() == '=' {
			l.pos++
			return mk(tokCmp), nil
		}
		return mk(tokNot), nil
	case c == '-':
		l.pos++
		if l.peekByte() == '>' {
			l.pos++
			return mk(tokImplies), nil
		}
		// Negative number.
		if !isDigit(l.peekByte()) {
			return token{}, l.errf("unexpected '-'")
		}
		l.lexNumberTail()
		return mk(tokNumber), nil
	case c == '"':
		// Literals decode with strconv.Unquote — the exact inverse of the
		// strconv.Quote rendering canonicalization emits — so every
		// canonical form re-parses to the same value (Canonicalize is a
		// fixpoint even for strings holding non-printable or non-UTF-8
		// bytes, which Quote writes as \xNN escapes).
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\n' {
				return token{}, l.errf("unterminated string literal")
			}
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) && l.src[l.pos+1] != '\n' {
				l.pos++
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string literal")
		}
		l.pos++ // closing quote
		s, err := strconv.Unquote(l.src[start:l.pos])
		if err != nil {
			return token{}, l.errf("invalid string literal %s", l.src[start:l.pos])
		}
		return token{kind: tokString, text: s, pos: start, line: l.line}, nil
	case isDigit(c):
		l.lexNumberTail()
		return mk(tokNumber), nil
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return mk(tokIdent), nil
	default:
		return token{}, l.errf("unexpected character %q", string(c))
	}
}

// lexNumberTail consumes digits and an optional fraction; the first
// character (digit or '-') is already consumed.
func (l *lexer) lexNumberTail() {
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && isDigit(l.src[l.pos+1]) {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
