package parser

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

func parseOK(t *testing.T, src string) query.Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("Validate(%q): %v", src, err)
	}
	return q
}

func TestParseCQ(t *testing.T) {
	q := parseOK(t, `Q(x, y) :- R(x, z), S(z, y), x < 5, z != "a".`)
	cq, ok := q.(*query.CQ)
	if !ok {
		t.Fatalf("expected *query.CQ, got %T", q)
	}
	if cq.Language() != query.LangCQ || cq.Arity() != 2 || len(cq.Body) != 4 {
		t.Fatalf("parsed CQ wrong: %v", cq)
	}
}

func TestParseSP(t *testing.T) {
	q := parseOK(t, `Q(x) :- R(x, y), y >= 10.`)
	if q.Language() != query.LangSP {
		t.Fatalf("expected SP classification, got %v", q.Language())
	}
}

func TestParseUCQ(t *testing.T) {
	q := parseOK(t, `
		% direct flights
		Q(x) :- R(x, y).
		# one-stop flights
		Q(x) :- S(x).`)
	if _, ok := q.(*query.UCQ); !ok {
		t.Fatalf("expected *query.UCQ, got %T", q)
	}
	if q.Language() != query.LangUCQ {
		t.Fatalf("language = %v", q.Language())
	}
}

func TestParseDatalogNR(t *testing.T) {
	q := parseOK(t, `
		P(x) :- E(x, y).
		Out(x) :- P(x), E(x, y).`)
	if q.Language() != query.LangDatalogNR {
		t.Fatalf("language = %v, want DATALOGnr", q.Language())
	}
	if q.OutName() != "P" {
		t.Fatalf("output = %q (first head wins)", q.OutName())
	}
}

func TestParseRecursiveDatalog(t *testing.T) {
	q := parseOK(t, `
		TC(x, y) :- E(x, y).
		TC(x, z) :- E(x, y), TC(y, z).`)
	if q.Language() != query.LangDatalog {
		t.Fatalf("language = %v, want DATALOG", q.Language())
	}
}

func TestParseEFOPlus(t *testing.T) {
	q := parseOK(t, `Q(x) := S(x) | exists b (R(x, b) & b = 2).`)
	if q.Language() != query.LangEFOPlus {
		t.Fatalf("language = %v, want ∃FO+", q.Language())
	}
}

func TestParseFOWithNegationAndForall(t *testing.T) {
	q := parseOK(t, `Q(x) := (exists b (R(x, b))) & !S(x) & forall z (S(z) -> x <= z).`)
	if q.Language() != query.LangFO {
		t.Fatalf("language = %v, want FO", q.Language())
	}
}

func TestParsedQueriesEvaluate(t *testing.T) {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("R", "a", "b"),
		relation.Ints(1, 2), relation.Ints(2, 3)))
	db.Add(relation.FromTuples(relation.NewSchema("S", "v"),
		relation.Ints(2)))
	cases := []struct {
		src  string
		want []relation.Tuple
	}{
		{`Q(x) :- R(x, y), S(y).`, []relation.Tuple{relation.Ints(1)}},
		{`Q(x) :- R(x, y), x > 1.`, []relation.Tuple{relation.Ints(2)}},
		{`Q(x) :- S(x). Q(y) :- R(y, z), z = 3.`, []relation.Tuple{relation.Ints(2)}},
		{`Q(x) := exists y (R(x, y) & !S(y)).`, []relation.Tuple{relation.Ints(2)}},
	}
	for _, c := range cases {
		q := parseOK(t, c.src)
		got, err := q.Eval(db)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if got.Len() != len(c.want) {
			t.Fatalf("%q: answer %v, want %v tuples", c.src, got, len(c.want))
		}
		for _, w := range c.want {
			if !got.Contains(w) {
				t.Fatalf("%q: answer %v missing %v", c.src, got, w)
			}
		}
	}
}

func TestParseConstants(t *testing.T) {
	q := parseOK(t, `Q(x) :- R(x, 3, -7, 2.5, "hi").`)
	cq := q.(*query.CQ)
	args := cq.Body[0].(*query.RelAtom).Args
	want := []relation.Value{relation.Int(3), relation.Int(-7), relation.Float(2.5), relation.Str("hi")}
	for i, w := range want {
		if args[i+1].IsVar || !args[i+1].Const.Equal(w) {
			t.Fatalf("arg %d = %v, want %v", i+1, args[i+1], w)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	q := parseOK(t, `Q(x) :- R(x, "a\"b").`)
	arg := q.(*query.CQ).Body[0].(*query.RelAtom).Args[1]
	if arg.Const.Text() != `a"b` {
		t.Fatalf("escaped string = %q", arg.Const.Text())
	}
}

// String literals decode with the full Go escape syntax — the inverse of
// the strconv.Quote rendering canonical forms use — so canonicalization
// is a fixpoint even for strings holding control or non-UTF-8 bytes
// (found by FuzzCanonicalSpec: "\xbc" used to re-parse as "xbc").
func TestParseStringEscapesRoundTrip(t *testing.T) {
	for _, s := range []string{"a\"b", "a\\b", "tab\tand\nnewline", "\xbc", "\x00", "π"} {
		src := fmt.Sprintf(`Q(x) :- R(x, %s).`, strconv.Quote(s))
		q := parseOK(t, src)
		arg := q.(*query.CQ).Body[0].(*query.RelAtom).Args[1]
		if arg.Const.Text() != s {
			t.Fatalf("literal %s decoded to %q, want %q", strconv.Quote(s), arg.Const.Text(), s)
		}
		c1, err := Canonicalize(src)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := Canonicalize(c1)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", c1, err)
		}
		if c1 != c2 {
			t.Fatalf("canonicalization not a fixpoint: %q -> %q", c1, c2)
		}
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	// The String() rendering of rule queries reparses to an equivalent query.
	src := `Q(x, y) :- R(x, z), S(z, y), x < 5.`
	q1 := parseOK(t, src)
	q2 := parseOK(t, q1.String())
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("R", "a", "b"),
		relation.Ints(1, 2), relation.Ints(9, 2)))
	db.Add(relation.FromTuples(relation.NewSchema("S", "a", "b"),
		relation.Ints(2, 4)))
	a1, err := q1.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := q2.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) {
		t.Fatalf("round trip changed semantics: %v vs %v", a1, a2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`Q(x)`,
		`Q(x) :- R(x.`,
		`Q(x) :- .`,
		`Q(x) := exists (R(x)).`,
		`Q(x) :- R(x), x <.`,
		`Q(x) :- R(x) S(x).`,
		`Q(x) :- R(x, "unterminated).`,
		`Q(x) : R(x).`,
		`Q(x) := R(x) &.`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseBooleanHead(t *testing.T) {
	q := parseOK(t, `Q() :- R(x, y), x = y.`)
	if q.Arity() != 0 {
		t.Fatalf("arity = %d, want 0", q.Arity())
	}
}
