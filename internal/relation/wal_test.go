package relation

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// walDelta builds a small delta upserting (and optionally deleting) rows
// of a single-relation schema, distinct per i.
func walDelta(i int) Delta {
	return Delta{
		Upserts: []RelationDelta{{
			Name:   "poi",
			Attrs:  []string{"name", "city"},
			Tuples: [][]any{{fmt.Sprintf("p%d", i), "edi"}},
		}},
	}
}

func openWALT(t *testing.T, path string, hooks *WALHooks) (*WAL, []WALRecord) {
	t.Helper()
	w, recs, err := OpenWAL(path, hooks)
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", path, err)
	}
	return w, recs
}

func TestWALRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deltas.wal")
	w, recs := openWALT(t, path, nil)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	const n = 17
	for i := 0; i < n; i++ {
		seq, err := w.Append(walDelta(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("append %d: seq = %d, want %d", i, seq, want)
		}
	}
	if w.Records() != n {
		t.Fatalf("Records() = %d, want %d", w.Records(), n)
	}
	if w.Syncs() == 0 || w.Syncs() > n {
		t.Fatalf("Syncs() = %d, want in [1, %d]", w.Syncs(), n)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2, recs := openWALT(t, path, nil)
	defer w2.Close()
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq = %d, want %d", i, r.Seq, i+1)
		}
		if len(r.Delta.Upserts) != 1 || r.Delta.Upserts[0].Tuples[0][0] != fmt.Sprintf("p%d", i) {
			t.Fatalf("record %d: delta mismatch: %+v", i, r.Delta)
		}
	}
	if got := w2.NextSeq(); got != n+1 {
		t.Fatalf("NextSeq after reopen = %d, want %d", got, n+1)
	}
}

// TestWALTornTailEveryOffset is the crash simulation core: after writing
// k+1 records, truncating the file at EVERY byte offset inside the last
// frame must recover exactly the first k records, and the log must then
// accept new appends cleanly.
func TestWALTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.wal")
	w, _ := openWALT(t, base, nil)
	const keep = 3
	for i := 0; i < keep; i++ {
		if _, err := w.Append(walDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	prefix := w.Size()
	if _, err := w.Append(walDelta(keep)); err != nil {
		t.Fatal(err)
	}
	full := w.Size()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != full {
		t.Fatalf("file is %d bytes, Size() said %d", len(raw), full)
	}

	for cut := prefix; cut < full; cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut@%d", cut), func(t *testing.T) {
			path := filepath.Join(dir, fmt.Sprintf("torn-%d.wal", cut))
			if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			w, recs := openWALT(t, path, nil)
			defer w.Close()
			if len(recs) != keep {
				t.Fatalf("recovered %d records, want %d", len(recs), keep)
			}
			if w.Size() != prefix {
				t.Fatalf("Size() = %d after truncation, want %d", w.Size(), prefix)
			}
			// The log must be append-ready: the torn frame is gone, seq
			// continues after the intact prefix.
			seq, err := w.Append(walDelta(99))
			if err != nil {
				t.Fatalf("append after torn-tail recovery: %v", err)
			}
			if seq != keep+1 {
				t.Fatalf("post-recovery seq = %d, want %d", seq, keep+1)
			}
		})
	}
}

func TestWALCRCCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crc.wal")
	w, _ := openWALT(t, path, nil)
	for i := 0; i < 3; i++ {
		if _, err := w.Append(walDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle record: record 0 intact,
	// 1 corrupt — recovery must stop at the corruption, keeping only 0.
	// Locate frame boundaries exactly by re-reading lengths.
	off := int64(0)
	var bounds []int64
	for off < int64(len(raw)) {
		bounds = append(bounds, off)
		l := int64(uint32(raw[off]) | uint32(raw[off+1])<<8 | uint32(raw[off+2])<<16 | uint32(raw[off+3])<<24)
		off += walFrameHeader + l
	}
	if len(bounds) != 3 {
		t.Fatalf("expected 3 frames, found %d", len(bounds))
	}
	raw[bounds[1]+walFrameHeader+2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, recs := openWALT(t, path, nil)
	defer w2.Close()
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("recovered %d records (want 1 intact prefix record)", len(recs))
	}
	if w2.Size() != bounds[1] {
		t.Fatalf("Size() = %d, want truncation at corrupt frame start %d", w2.Size(), bounds[1])
	}
}

func TestWALHooks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hooks.wal")
	var writeErr, syncErr error
	hooks := &WALHooks{
		BeforeWrite: func(rec *WALRecord) error { return writeErr },
		BeforeSync:  func() error { return syncErr },
	}
	w, _ := openWALT(t, path, hooks)
	defer w.Close()

	if _, err := w.Append(walDelta(0)); err != nil {
		t.Fatalf("baseline append: %v", err)
	}
	sizeBefore := w.Size()

	writeErr = errors.New("injected write failure")
	if _, err := w.Append(walDelta(1)); !errors.Is(err, writeErr) {
		t.Fatalf("append under write failpoint: err = %v, want %v", err, writeErr)
	}
	if w.Size() != sizeBefore {
		t.Fatalf("failed append changed log size: %d -> %d", sizeBefore, w.Size())
	}
	writeErr = nil

	syncErr = errors.New("injected fsync failure")
	if _, err := w.Append(walDelta(2)); !errors.Is(err, syncErr) {
		t.Fatalf("append under sync failpoint: err = %v, want %v", err, syncErr)
	}
	syncErr = nil

	// The frame from the failed-sync append IS on disk (only the flush
	// failed); recovery may legitimately surface it. What matters is the
	// log still works and seq stays monotonic.
	seq, err := w.Append(walDelta(3))
	if err != nil {
		t.Fatalf("append after failpoints cleared: %v", err)
	}
	if seq < 2 {
		t.Fatalf("seq went backwards: %d", seq)
	}
}

func TestWALResetKeepsSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reset.wal")
	w, _ := openWALT(t, path, nil)
	defer w.Close()
	for i := 0; i < 5; i++ {
		if _, err := w.Append(walDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if w.Size() != 0 || w.Records() != 0 {
		t.Fatalf("after reset: size=%d records=%d, want 0/0", w.Size(), w.Records())
	}
	seq, err := w.Append(walDelta(5))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("post-compaction seq = %d, want 6 (counter survives Reset)", seq)
	}
}

func TestWALAdvance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "advance.wal")
	w, _ := openWALT(t, path, nil)
	defer w.Close()
	w.Advance(41)
	seq, err := w.Append(walDelta(0))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("seq after Advance(41) = %d, want 42", seq)
	}
	w.Advance(10) // no-op: never moves backwards
	if got := w.NextSeq(); got != 43 {
		t.Fatalf("NextSeq = %d, want 43", got)
	}
}

func TestWALConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.wal")
	w, _ := openWALT(t, path, nil)
	const (
		workers = 8
		each    = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := w.Append(walDelta(g*each + i)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append: %v", err)
	}
	syncs := w.Syncs()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if syncs == 0 || syncs > workers*each {
		t.Fatalf("Syncs() = %d, want in [1, %d]", syncs, workers*each)
	}
	w2, recs := openWALT(t, path, nil)
	defer w2.Close()
	if len(recs) != workers*each {
		t.Fatalf("replayed %d records, want %d", len(recs), workers*each)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d: log order must equal seq order", i, r.Seq)
		}
	}
}

func TestWALClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.wal")
	w, _ := openWALT(t, path, nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := w.Append(walDelta(0)); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("append on closed log: %v, want ErrWALClosed", err)
	}
	if err := w.Reset(); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("reset on closed log: %v, want ErrWALClosed", err)
	}
}
