package relation

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// jsonRelation is the wire form of a relation.
type jsonRelation struct {
	Name   string   `json:"name"`
	Attrs  []string `json:"attrs"`
	Tuples [][]any  `json:"tuples"`
}

// jsonDatabase is the wire form of a database.
type jsonDatabase struct {
	Relations []jsonRelation `json:"relations"`
}

// ValueToJSON converts a Value to the scalar encoding/json renders it as;
// it is the exported form used by the serving layer's wire types.
func ValueToJSON(v Value) any { return valueToJSON(v) }

// ValueFromJSON converts a decoded JSON scalar (float64, json.Number,
// string, bool) to a Value, the inverse of ValueToJSON.
func ValueFromJSON(x any) (Value, error) { return valueFromJSON(x) }

// valueToJSON converts a Value to its JSON representation.
func valueToJSON(v Value) any {
	switch v.Kind() {
	case KindInt:
		return v.Int64()
	case KindFloat:
		return v.Float64()
	default:
		return v.Text()
	}
}

// valueFromJSON converts a decoded JSON scalar to a Value. Numbers without a
// fractional part decode as integers so that round-trips are stable. Go int
// and int64 are accepted too, for callers that build wire rows
// programmatically (delta construction in tests and traffic generators).
func valueFromJSON(x any) (Value, error) {
	switch t := x.(type) {
	case int:
		return Int(int64(t)), nil
	case int64:
		return Int(t), nil
	case float64:
		if t == math.Trunc(t) && math.Abs(t) < 1e15 {
			return Int(int64(t)), nil
		}
		return Float(t), nil
	case json.Number:
		if i, err := t.Int64(); err == nil {
			return Int(i), nil
		}
		f, err := t.Float64()
		if err != nil {
			return Value{}, fmt.Errorf("relation: bad number %q", t)
		}
		return Float(f), nil
	case string:
		return Str(t), nil
	case bool:
		return Bool(t), nil
	default:
		return Value{}, fmt.Errorf("relation: unsupported JSON value %T", x)
	}
}

// MarshalJSON encodes the database.
func (d *Database) MarshalJSON() ([]byte, error) {
	out := jsonDatabase{}
	for _, name := range d.order {
		r := d.rels[name]
		jr := jsonRelation{Name: r.Name(), Attrs: append([]string(nil), r.Schema().Attrs...)}
		for _, t := range r.Sorted().Tuples() {
			row := make([]any, len(t))
			for i, v := range t {
				row[i] = valueToJSON(v)
			}
			jr.Tuples = append(jr.Tuples, row)
		}
		out.Relations = append(out.Relations, jr)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the database.
func (d *Database) UnmarshalJSON(data []byte) error {
	var in jsonDatabase
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*d = *NewDatabase()
	for _, jr := range in.Relations {
		r := NewRelation(NewSchema(jr.Name, jr.Attrs...))
		for _, row := range jr.Tuples {
			t := make(Tuple, len(row))
			for i, x := range row {
				v, err := valueFromJSON(x)
				if err != nil {
					return fmt.Errorf("relation %s: %w", jr.Name, err)
				}
				t[i] = v
			}
			if err := r.Insert(t); err != nil {
				return err
			}
		}
		d.Add(r)
	}
	return nil
}

// WriteJSON writes the database as indented JSON.
func (d *Database) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// ReadJSON reads a database from JSON.
func ReadJSON(r io.Reader) (*Database, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	d := NewDatabase()
	if err := json.Unmarshal(b, d); err != nil {
		return nil, err
	}
	return d, nil
}
