package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Schema describes a relation: its name and attribute names. Attribute
// domains are implicit in the values stored; the distance functions of
// Section 7 are keyed by "Relation.Attribute" strings derived from schemas.
type Schema struct {
	Name  string
	Attrs []string
}

// NewSchema builds a schema.
func NewSchema(name string, attrs ...string) *Schema {
	return &Schema{Name: name, Attrs: attrs}
}

// AutoSchema builds a schema with attribute names c0..c{n-1}, used for query
// answers and intensional (IDB) predicates whose attributes are positional.
func AutoSchema(name string, arity int) *Schema {
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("c%d", i)
	}
	return &Schema{Name: name, Attrs: attrs}
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.Attrs) }

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(attr string) int {
	for i, a := range s.Attrs {
		if a == attr {
			return i
		}
	}
	return -1
}

// Qualified returns the "Name.Attr" key for attribute i, the key under which
// Section 7 distance functions are registered.
func (s *Schema) Qualified(i int) string { return s.Name + "." + s.Attrs[i] }

// String renders the schema as Name(a1, ..., an).
func (s *Schema) String() string {
	return s.Name + "(" + strings.Join(s.Attrs, ", ") + ")"
}

// Relation is a set of tuples over a schema. Insertion deduplicates, so the
// paper's set semantics hold by construction. The tuple order is insertion
// order until Sort is called; Sorted returns a canonical copy.
//
// Relations are copy-on-write: Clone shares the tuple storage with the
// receiver, and whichever side mutates first (Insert, Delete, Sort) copies
// its slice and index before touching them. Cloning a large catalog is
// therefore O(1), which is what lets the serving layer snapshot whole
// collections per request and apply deltas without duplicating unmutated
// relations.
type Relation struct {
	schema *Schema
	tuples []Tuple
	index  map[string]struct{}
	// acc is the order-independent set hash of the tuple keys, maintained
	// incrementally by Insert and Delete; see Fingerprint in version.go.
	acc fpAcc
	// digest memoises the completed relation fingerprint so concurrent
	// readers (the serving layer keys every request on subset
	// fingerprints) pay the sha256 once per content version: mutations
	// clear it, lazy recomputes race benignly (the value is
	// content-determined).
	digest atomic.Pointer[[32]byte]
	// shared marks the storage as referenced by at least one clone; the
	// next mutation copies first. Atomic so concurrent Clones of one
	// relation are safe (mutation itself requires external serialization,
	// as before).
	shared atomic.Bool
}

// NewRelation creates an empty relation over schema.
func NewRelation(schema *Schema) *Relation {
	return &Relation{schema: schema, index: make(map[string]struct{})}
}

// FromTuples creates a relation over schema containing the given tuples
// (deduplicated). It panics on arity mismatch, which indicates programmer
// error in test fixtures or generators.
func FromTuples(schema *Schema, tuples ...Tuple) *Relation {
	r := NewRelation(schema)
	for _, t := range tuples {
		if err := r.Insert(t); err != nil {
			panic(err)
		}
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Name returns the relation's name.
func (r *Relation) Name() string { return r.schema.Name }

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.schema.Arity() }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// ensureOwned gives the relation private tuple storage before a mutation:
// a no-op unless the storage is shared with a clone, in which case the
// slice and index are copied first so every clone keeps seeing the state it
// was taken at.
func (r *Relation) ensureOwned() {
	if !r.shared.Load() {
		return
	}
	r.tuples = append([]Tuple(nil), r.tuples...)
	idx := make(map[string]struct{}, len(r.index))
	for k := range r.index {
		idx[k] = struct{}{}
	}
	r.index = idx
	r.shared.Store(false)
}

// Insert adds t to the relation, reporting an arity mismatch as an error.
// Duplicate tuples are ignored.
func (r *Relation) Insert(t Tuple) error {
	if len(t) != r.schema.Arity() {
		return fmt.Errorf("relation %s: inserting tuple of arity %d into schema of arity %d",
			r.schema.Name, len(t), r.schema.Arity())
	}
	k := t.Key()
	if _, ok := r.index[k]; ok {
		return nil
	}
	r.ensureOwned()
	r.index[k] = struct{}{}
	r.tuples = append(r.tuples, t)
	r.acc.toggle(k)
	r.digest.Store(nil)
	return nil
}

// Delete removes t if present and reports whether it was removed.
func (r *Relation) Delete(t Tuple) bool {
	k := t.Key()
	if _, ok := r.index[k]; !ok {
		return false
	}
	r.ensureOwned()
	delete(r.index, k)
	for i, u := range r.tuples {
		if u.Key() == k {
			r.tuples = append(r.tuples[:i], r.tuples[i+1:]...)
			break
		}
	}
	r.acc.toggle(k)
	r.digest.Store(nil)
	return true
}

// Contains reports membership of t.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.index[t.Key()]
	return ok
}

// Tuples returns the underlying tuple slice. Callers must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Sort orders the tuples canonically in place.
func (r *Relation) Sort() {
	r.ensureOwned()
	sort.Slice(r.tuples, func(i, j int) bool { return r.tuples[i].Compare(r.tuples[j]) < 0 })
}

// Sorted returns a canonical (sorted) copy of the relation.
func (r *Relation) Sorted() *Relation {
	c := r.Clone()
	c.Sort()
	return c
}

// Clone returns a copy-on-write copy: the tuple storage is shared until
// either side mutates (tuples themselves are immutable by convention, so
// they are always shared). Cloning is O(1).
func (r *Relation) Clone() *Relation {
	r.shared.Store(true)
	c := &Relation{schema: r.schema, tuples: r.tuples, index: r.index, acc: r.acc}
	c.digest.Store(r.digest.Load()) // same content, same memoised digest
	c.shared.Store(true)
	return c
}

// Equal reports set equality of two relations (schemas must share arity;
// names are ignored so query answers can be compared across engines).
func (r *Relation) Equal(o *Relation) bool {
	if r.Len() != o.Len() || r.Arity() != o.Arity() {
		return false
	}
	for _, t := range r.tuples {
		if !o.Contains(t) {
			return false
		}
	}
	return true
}

// String renders the relation with its schema and sorted tuples.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.schema.String())
	b.WriteString(" {")
	s := r.Sorted()
	for i, t := range s.tuples {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteString("}")
	return b.String()
}
