package relation

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// WAL is a durable append-only log of collection deltas. Each accepted
// delta is framed, CRC-protected and fsynced before the caller installs
// the new database version, so a crash after Append returns loses
// nothing: on restart the log replays on top of the last snapshot.
// Because a Delta is a membership statement (replay is idempotent, see
// Delta), logging the original delta — not a diff against the installed
// version — is sound even when the same record is applied twice across a
// snapshot boundary.
//
// Frame layout, little-endian:
//
//	[uint32 payload length][uint32 CRC-32 (IEEE) of payload][payload]
//
// where the payload is the JSON encoding of a WALRecord. A torn tail —
// a partial frame from a crash mid-write — is detected by short reads,
// CRC mismatch or undecodable payload, and truncated away on open; the
// log is then positioned for appends at the truncation point.
//
// Appends from concurrent writers are serialized internally; fsyncs are
// group-committed — one Sync covers every frame written before it was
// issued, so N concurrent Appends cost far fewer than N disk flushes.
type WAL struct {
	path  string
	hooks WALHooks

	mu      sync.Mutex // guards file writes, size, seq, counters
	f       *os.File
	size    int64
	nextSeq uint64
	records uint64
	closed  bool

	// Group-commit state, under its own lock so waiters don't block
	// writers appending the next batch of frames.
	syncMu  sync.Mutex
	syncing bool
	syncGen uint64
	synced  int64 // bytes durably flushed
	syncs   uint64
	syncErr error // error of the last completed round
	syncCnd *sync.Cond
}

// WALRecord is one logged mutation: the delta and its log sequence
// number. Sequence numbers are assigned by Append, strictly increasing,
// and survive compaction (Reset keeps the counter), so a snapshot
// stamped with the last applied seq lets recovery skip records the
// snapshot already contains — the crash-during-compaction window where
// both the snapshot and a pre-compaction suffix exist is safe.
type WALRecord struct {
	Seq   uint64 `json:"seq"`
	Delta Delta  `json:"delta"`
}

// WALHooks are fault-injection points for tests: BeforeWrite runs before
// a record's frame is written (an error aborts the append with no
// observable effect on the log), BeforeSync runs inside each fsync round
// before the actual Sync (an error or a stall is observed by every
// waiter of that round). Both may be nil. Production opens pass nil
// hooks; the serving layer threads them through for its fault suite.
type WALHooks struct {
	BeforeWrite func(rec *WALRecord) error
	BeforeSync  func() error
}

// ErrWALClosed is returned by operations on a closed WAL.
var ErrWALClosed = errors.New("relation: WAL is closed")

// maxWALFrame bounds a frame's claimed payload length; anything larger
// is treated as tail corruption rather than attempted as an allocation.
const maxWALFrame = 1 << 30

// walFrameHeader is the fixed frame prefix: payload length + CRC.
const walFrameHeader = 8

// OpenWAL opens (creating if absent) the log at path, replays every
// intact record, truncates a torn tail, and returns the WAL positioned
// for appends together with the replayed records in log order. The
// returned records are the recovery stream: apply those with Seq greater
// than the snapshot's to rebuild the pre-crash state.
func OpenWAL(path string, hooks *WALHooks) (*WAL, []WALRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, good, err := readWALFrames(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop the torn tail (if any) and position at the end of the intact
	// prefix. Truncation is what makes the next append start on a frame
	// boundary instead of extending garbage.
	if fi, err := f.Stat(); err != nil {
		f.Close()
		return nil, nil, err
	} else if fi.Size() > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{path: path, f: f, size: good, synced: good, nextSeq: 1, records: uint64(len(recs))}
	if hooks != nil {
		w.hooks = *hooks
	}
	if n := len(recs); n > 0 {
		w.nextSeq = recs[n-1].Seq + 1
	}
	w.syncCnd = sync.NewCond(&w.syncMu)
	return w, recs, nil
}

// readWALFrames scans the log from the start, returning the decoded
// records and the byte offset of the end of the last intact frame.
// Corruption anywhere in a frame — short header, absurd length, short
// payload, CRC mismatch, undecodable JSON, or a sequence number that
// does not increase — ends the scan at that frame's start; everything
// before it is intact. Only I/O errors (not corruption) are returned.
func readWALFrames(f *os.File) ([]WALRecord, int64, error) {
	var (
		recs    []WALRecord
		good    int64
		hdr     [walFrameHeader]byte
		lastSeq uint64
	)
	for {
		n, err := io.ReadFull(f, hdr[:])
		if err == io.EOF && n == 0 {
			return recs, good, nil
		}
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return recs, good, nil // torn header
		}
		if err != nil {
			return nil, 0, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxWALFrame {
			return recs, good, nil // length field is garbage
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				return recs, good, nil // torn payload
			}
			return nil, 0, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, good, nil // bit rot or torn overwrite
		}
		var rec WALRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, good, nil
		}
		if rec.Seq <= lastSeq {
			return recs, good, nil // ordering violated: distrust the tail
		}
		lastSeq = rec.Seq
		recs = append(recs, rec)
		good += walFrameHeader + int64(length)
	}
}

// ReadWALSince reads the log at path read-only and returns the intact
// records with Seq strictly greater than since, in log order — the
// replication stream a follower tails to catch up from its last applied
// sequence number. The file is opened, scanned with the same
// torn-tail-tolerant frame reader recovery uses, and closed; nothing is
// truncated or repositioned, so a concurrent writer's WAL is unaffected
// (callers serialize against compaction, which swaps the file's content
// under the owner's lock). A missing file is an empty stream, not an
// error: a collection whose log was just compacted away has nothing to
// tail, and the caller falls back to a snapshot transfer.
func ReadWALSince(path string, since uint64) ([]WALRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	recs, _, err := readWALFrames(f)
	if err != nil {
		return nil, err
	}
	i := 0
	for i < len(recs) && recs[i].Seq <= since {
		i++
	}
	return recs[i:], nil
}

// Append logs one delta: the record is framed, written, and fsynced
// (group-committed) before Append returns with the record's sequence
// number. An error leaves the log exactly as it was — a partial frame
// from a failed write is truncated away immediately, not left for the
// next open to clean up.
func (w *WAL) Append(delta Delta) (uint64, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrWALClosed
	}
	rec := WALRecord{Seq: w.nextSeq, Delta: delta}
	if w.hooks.BeforeWrite != nil {
		if err := w.hooks.BeforeWrite(&rec); err != nil {
			w.mu.Unlock()
			return 0, err
		}
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		w.mu.Unlock()
		return 0, err
	}
	frame := make([]byte, walFrameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[walFrameHeader:], payload)
	if _, err := w.f.Write(frame); err != nil {
		// A short write leaves a torn frame; cut it off so the in-memory
		// size and the on-disk intact prefix stay equal.
		w.f.Truncate(w.size)
		w.f.Seek(w.size, io.SeekStart)
		w.mu.Unlock()
		return 0, err
	}
	w.size += int64(len(frame))
	w.nextSeq++
	w.records++
	target := w.size
	w.mu.Unlock()
	if err := w.syncTo(target); err != nil {
		return 0, err
	}
	return rec.Seq, nil
}

// syncTo blocks until at least target bytes of the log are durably
// flushed. One goroutine runs the fsync while later arrivals wait on the
// round; a successful round covers every byte written before it started,
// so each caller needs at most two rounds (one in flight when it
// arrived, then its own).
func (w *WAL) syncTo(target int64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	for w.synced < target {
		if w.syncing {
			gen := w.syncGen
			for w.syncGen == gen {
				w.syncCnd.Wait()
			}
			if w.synced >= target {
				return nil
			}
			if w.syncErr != nil {
				return w.syncErr
			}
			continue
		}
		w.syncing = true
		w.mu.Lock()
		covered := w.size
		closed := w.closed
		w.mu.Unlock()
		w.syncMu.Unlock()
		var err error
		if closed {
			err = ErrWALClosed
		} else {
			if w.hooks.BeforeSync != nil {
				err = w.hooks.BeforeSync()
			}
			if err == nil {
				err = w.f.Sync()
			}
		}
		w.syncMu.Lock()
		w.syncing = false
		w.syncGen++
		w.syncErr = err
		if err == nil {
			w.syncs++
			if covered > w.synced {
				w.synced = covered
			}
		}
		w.syncCnd.Broadcast()
		if err != nil {
			return err
		}
	}
	return nil
}

// Reset empties the log — called after a snapshot has durably captured
// everything the log held (compaction). The sequence counter is NOT
// reset: later appends continue above the snapshot's seq, preserving
// the seq-gated replay invariant.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size = 0
	w.records = 0
	w.syncMu.Lock()
	w.synced = 0
	w.syncMu.Unlock()
	return nil
}

// Advance ensures future sequence numbers exceed seq. Recovery calls it
// with the snapshot's seq when the snapshot is ahead of the (compacted)
// log, so post-restart appends never reuse a seq the snapshot covers.
func (w *WAL) Advance(seq uint64) {
	w.mu.Lock()
	if seq >= w.nextSeq {
		w.nextSeq = seq + 1
	}
	w.mu.Unlock()
}

// Close flushes and closes the log file. Further operations return
// ErrWALClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.mu.Unlock()
	// Wake any group-commit waiters parked on an in-flight round.
	w.syncMu.Lock()
	w.syncCnd.Broadcast()
	w.syncMu.Unlock()
	return err
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Size returns the log's current length in bytes (intact frames only).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Records returns the number of records in the log since the last Reset.
func (w *WAL) Records() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Syncs returns the number of fsync rounds completed — with group
// commit this is ≤ the number of Appends.
func (w *WAL) Syncs() uint64 {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.syncs
}

// NextSeq returns the sequence number the next Append will use.
func (w *WAL) NextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// String implements fmt.Stringer for diagnostics.
func (w *WAL) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return fmt.Sprintf("wal(%s: %d records, %d bytes)", w.path, w.records, w.size)
}
