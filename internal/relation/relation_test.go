package relation

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTupleKeyUnambiguous(t *testing.T) {
	// Pairs of distinct tuples that could collide under naive encodings.
	pairs := [][2]Tuple{
		{Ints(1, 2), Ints(12)},
		{Strs("ab", "c"), Strs("a", "bc")},
		{NewTuple(Int(1)), NewTuple(Str("1"))},
		{NewTuple(Float(1)), NewTuple(Int(1))},
		{Strs("a|b"), Strs("a", "b")},
		{Ints(), Ints(0)},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("key collision: %v and %v both encode to %q", p[0], p[1], p[0].Key())
		}
	}
}

func TestTupleKeyAgreesWithEqual(t *testing.T) {
	f := func(a, b []int64) bool {
		ta := Ints(a...)
		tb := Ints(b...)
		return (ta.Key() == tb.Key()) == ta.Equal(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleCompareLexicographic(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{Ints(1, 2), Ints(1, 3), -1},
		{Ints(1, 2), Ints(1, 2), 0},
		{Ints(2), Ints(1, 9), 1},
		{Ints(1), Ints(1, 0), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRelationSetSemantics(t *testing.T) {
	r := NewRelation(NewSchema("R", "a", "b"))
	for i := 0; i < 3; i++ {
		if err := r.Insert(Ints(1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 1 {
		t.Fatalf("duplicate inserts: Len = %d, want 1", r.Len())
	}
	if err := r.Insert(Ints(3, 4)); err != nil {
		t.Fatal(err)
	}
	if !r.Contains(Ints(1, 2)) || !r.Contains(Ints(3, 4)) || r.Contains(Ints(4, 3)) {
		t.Fatal("Contains mismatch")
	}
	if !r.Delete(Ints(1, 2)) {
		t.Fatal("Delete reported missing tuple")
	}
	if r.Delete(Ints(1, 2)) {
		t.Fatal("Delete of absent tuple reported success")
	}
	if r.Len() != 1 || r.Contains(Ints(1, 2)) {
		t.Fatal("Delete did not remove tuple")
	}
}

func TestRelationArityMismatch(t *testing.T) {
	r := NewRelation(NewSchema("R", "a"))
	if err := r.Insert(Ints(1, 2)); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestRelationEqualIgnoresOrder(t *testing.T) {
	s := NewSchema("R", "a")
	r1 := FromTuples(s, Ints(1), Ints(2), Ints(3))
	r2 := FromTuples(s, Ints(3), Ints(1), Ints(2))
	if !r1.Equal(r2) {
		t.Fatal("set equality should ignore order")
	}
	r3 := FromTuples(s, Ints(1), Ints(2))
	if r1.Equal(r3) {
		t.Fatal("relations of different cardinality compared equal")
	}
}

func TestRelationCloneIndependence(t *testing.T) {
	s := NewSchema("R", "a")
	r := FromTuples(s, Ints(1))
	c := r.Clone()
	if err := c.Insert(Ints(2)); err != nil {
		t.Fatal(err)
	}
	if r.Contains(Ints(2)) {
		t.Fatal("clone shares tuple storage with original")
	}
}

func TestDatabaseOverlay(t *testing.T) {
	d := NewDatabase()
	d.Add(FromTuples(NewSchema("R", "a"), Ints(1)))
	overlay := d.WithRelation(FromTuples(NewSchema("S", "b"), Ints(9)))
	if overlay.Relation("S") == nil {
		t.Fatal("overlay missing new relation")
	}
	if d.Relation("S") != nil {
		t.Fatal("overlay mutated base database")
	}
	// Replacing an existing relation must not touch the base.
	repl := d.WithRelation(FromTuples(NewSchema("R", "a"), Ints(7)))
	if !repl.Relation("R").Contains(Ints(7)) || d.Relation("R").Contains(Ints(7)) {
		t.Fatal("overlay replacement leaked into base")
	}
	if d.Size() != 1 || repl.Size() != 1 || overlay.Size() != 2 {
		t.Fatalf("sizes: base=%d repl=%d overlay=%d", d.Size(), repl.Size(), overlay.Size())
	}
}

func TestActiveDomain(t *testing.T) {
	d := NewDatabase()
	d.Add(FromTuples(NewSchema("R", "a", "b"), Ints(3, 1), Ints(1, 2)))
	d.Add(FromTuples(NewSchema("S", "c"), NewTuple(Str("x"))))
	adom := d.ActiveDomain()
	want := []Value{Int(1), Int(2), Int(3), Str("x")}
	if len(adom) != len(want) {
		t.Fatalf("adom = %v, want %v", adom, want)
	}
	for i := range want {
		if !adom[i].Equal(want[i]) {
			t.Fatalf("adom[%d] = %v, want %v", i, adom[i], want[i])
		}
	}
	col := d.ActiveDomainOf("R", "b")
	if len(col) != 2 || !col[0].Equal(Int(1)) || !col[1].Equal(Int(2)) {
		t.Fatalf("column adom = %v", col)
	}
	if d.ActiveDomainOf("nope", "b") != nil || d.ActiveDomainOf("R", "nope") != nil {
		t.Fatal("missing relation/attr should yield nil")
	}
}

func TestDatabaseJSONRoundTrip(t *testing.T) {
	d := NewDatabase()
	d.Add(FromTuples(NewSchema("flight", "from", "to", "price"),
		NewTuple(Str("edi"), Str("nyc"), Int(420)),
		NewTuple(Str("edi"), Str("ewr"), Int(310))))
	d.Add(FromTuples(NewSchema("score", "v"), NewTuple(Float(2.75))))

	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != d.Size() {
		t.Fatalf("round trip size %d, want %d", got.Size(), d.Size())
	}
	for _, name := range d.Names() {
		if !got.Relation(name).Equal(d.Relation(name)) {
			t.Fatalf("relation %s mismatch after round trip:\n%v\nvs\n%v", name, got.Relation(name), d.Relation(name))
		}
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := NewSchema("R", "a", "b")
	if s.Arity() != 2 || s.AttrIndex("b") != 1 || s.AttrIndex("z") != -1 {
		t.Fatal("schema helpers broken")
	}
	if s.Qualified(0) != "R.a" {
		t.Fatalf("Qualified = %q", s.Qualified(0))
	}
	auto := AutoSchema("Q", 3)
	if auto.Arity() != 3 || auto.Attrs[2] != "c2" {
		t.Fatalf("AutoSchema = %v", auto)
	}
}
