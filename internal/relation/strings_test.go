package relation

import (
	"strings"
	"testing"
)

func TestRelationString(t *testing.T) {
	r := FromTuples(NewSchema("R", "a", "b"), Ints(2, 3), Ints(1, 2))
	got := r.String()
	// Canonical (sorted) rendering regardless of insertion order.
	if got != "R(a, b) {(1, 2), (2, 3)}" {
		t.Fatalf("rendering = %q", got)
	}
}

func TestDatabaseString(t *testing.T) {
	db := NewDatabase()
	db.Add(FromTuples(NewSchema("R", "a"), Ints(1)))
	db.Add(FromTuples(NewSchema("S", "b"), NewTuple(Str("x"))))
	got := db.String()
	if !strings.Contains(got, "R(a) {(1)}") || !strings.Contains(got, `S(b) {("x")}`) {
		t.Fatalf("rendering = %q", got)
	}
}

func TestSortedDoesNotMutate(t *testing.T) {
	r := FromTuples(NewSchema("R", "a"), Ints(3), Ints(1))
	s := r.Sorted()
	if !s.Tuples()[0].Equal(Ints(1)) {
		t.Fatal("Sorted did not sort")
	}
	if !r.Tuples()[0].Equal(Ints(3)) {
		t.Fatal("Sorted mutated the receiver")
	}
	r.Sort()
	if !r.Tuples()[0].Equal(Ints(1)) {
		t.Fatal("Sort did not sort in place")
	}
}

func TestNamesPreserveInsertionOrder(t *testing.T) {
	db := NewDatabase()
	db.Add(FromTuples(NewSchema("Z", "a"), Ints(1)))
	db.Add(FromTuples(NewSchema("A", "a"), Ints(1)))
	names := db.Names()
	if names[0] != "Z" || names[1] != "A" {
		t.Fatalf("names = %v, want insertion order", names)
	}
	// Replacing keeps the original position.
	db.Add(FromTuples(NewSchema("Z", "a"), Ints(9)))
	names = db.Names()
	if len(names) != 2 || names[0] != "Z" {
		t.Fatalf("names after replacement = %v", names)
	}
	if !db.Relation("Z").Contains(Ints(9)) {
		t.Fatal("replacement did not take effect")
	}
}

func TestTupleStringAndClone(t *testing.T) {
	tp := NewTuple(Int(1), Str("a"), Float(2.5))
	if tp.String() != `(1, "a", 2.5)` {
		t.Fatalf("tuple rendering = %q", tp.String())
	}
	c := tp.Clone()
	c[0] = Int(9)
	if tp[0].Int64() != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "int" || KindFloat.String() != "float" || KindString.String() != "string" {
		t.Fatal("kind names wrong")
	}
}

func TestStrsHelper(t *testing.T) {
	tp := Strs("a", "b")
	if len(tp) != 2 || tp[1].Text() != "b" {
		t.Fatalf("Strs = %v", tp)
	}
}
