// Package relation implements the relational substrate of the package
// recommendation model of Deng, Fan and Geerts (PODS 2012): typed values,
// tuples, set-semantics relations, and databases with named relations.
//
// The paper assumes a database D specified by a relational schema
// R = (R1, ..., Rn) whose attributes range over fixed domains. This package
// realises that model with three value kinds (64-bit integers, 64-bit floats
// and strings), canonical tuple encodings so that packages and answers can be
// treated as sets, and an overlay mechanism (Database.WithRelation) used to
// evaluate compatibility constraints Qc over D extended with the package
// relation RQ.
package relation

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds. Integers and floats form a single numeric class
// for the built-in comparison predicates (=, ≠, <, ≤, >, ≥); strings compare
// lexicographically and are ordered after all numerics.
const (
	KindInt Kind = iota
	KindFloat
	KindString
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is an immutable attribute value. The zero Value is the integer 0.
// Values are comparable with == (canonical representation: the unused scalar
// fields are zero), so they can key maps directly.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value. NaN is rejected by normalising it to
// zero so that Values remain totally ordered and usable as map keys.
func Float(v float64) Value {
	if math.IsNaN(v) {
		v = 0
	}
	return Value{kind: KindFloat, f: v}
}

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Bool returns the paper's Boolean-domain encoding of b: Int(1) for true and
// Int(0) for false, matching the I01 relation of Figure 4.1.
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNumeric reports whether the value belongs to the numeric class.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Int64 returns the integer payload; it is 0 unless Kind is KindInt.
func (v Value) Int64() int64 { return v.i }

// Float64 returns the numeric payload as a float64 for either numeric kind.
func (v Value) Float64() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// Text returns the string payload; it is "" unless Kind is KindString.
func (v Value) Text() string { return v.s }

// Equal reports value equality under the built-in predicate "=": numeric
// values compare numerically across kinds, strings compare byte-wise.
func (v Value) Equal(w Value) bool { return v.Compare(w) == 0 }

// Compare totally orders values: numerics first (by numeric value), then
// strings (lexicographically). It returns -1, 0, or +1.
func (v Value) Compare(w Value) int {
	vn, wn := v.IsNumeric(), w.IsNumeric()
	switch {
	case vn && wn:
		a, b := v.Float64(), w.Float64()
		// Exact comparison for the int/int case avoids float rounding.
		if v.kind == KindInt && w.kind == KindInt {
			switch {
			case v.i < w.i:
				return -1
			case v.i > w.i:
				return 1
			default:
				return 0
			}
		}
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	case vn && !wn:
		return -1
	case !vn && wn:
		return 1
	default:
		return strings.Compare(v.s, w.s)
	}
}

// Less reports v < w under Compare.
func (v Value) Less(w Value) bool { return v.Compare(w) < 0 }

// String renders the value for human consumption.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return strconv.Quote(v.s)
	}
}

// appendKey writes an unambiguous encoding of v to b, used for canonical
// tuple keys. The encoding is kind tag + payload, length-prefixed for
// strings so distinct tuples never collide.
func (v Value) appendKey(b *strings.Builder) {
	switch v.kind {
	case KindInt:
		b.WriteByte('i')
		b.WriteString(strconv.FormatInt(v.i, 10))
	case KindFloat:
		b.WriteByte('f')
		b.WriteString(strconv.FormatFloat(v.f, 'b', -1, 64))
	default:
		b.WriteByte('s')
		b.WriteString(strconv.Itoa(len(v.s)))
		b.WriteByte(':')
		b.WriteString(v.s)
	}
	b.WriteByte('|')
}
