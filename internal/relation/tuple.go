package relation

import "strings"

// Tuple is an ordered sequence of attribute values. Tuples are treated as
// immutable once inserted into a Relation; callers who need to mutate should
// Clone first.
type Tuple []Value

// NewTuple builds a tuple from values.
func NewTuple(vs ...Value) Tuple { return Tuple(vs) }

// Ints builds a tuple of integer values, a convenience for the Boolean
// gadget relations of Figure 4.1 and for tests.
func Ints(vs ...int64) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		t[i] = Int(v)
	}
	return t
}

// Strs builds a tuple of string values.
func Strs(vs ...string) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		t[i] = Str(v)
	}
	return t
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically; shorter tuples come first among
// tuples sharing a prefix.
func (t Tuple) Compare(u Tuple) int {
	n := min(len(t), len(u))
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	default:
		return 0
	}
}

// Key returns a canonical string encoding of the tuple, unambiguous across
// kinds and lengths; two tuples have equal keys iff they are Equal.
func (t Tuple) Key() string {
	var b strings.Builder
	b.Grow(len(t) * 8)
	for _, v := range t {
		v.appendKey(&b)
	}
	return b.String()
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
