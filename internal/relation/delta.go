package relation

import (
	"fmt"
	"sort"
)

// Delta is the wire form of an incremental collection mutation: tuples to
// upsert and tuples to delete, grouped by relation. Upserts are applied
// before deletes. A delta is a statement about membership, not an edit
// script: upserting a tuple that is already present and deleting a tuple
// that is absent are both no-ops, so replaying a delta is idempotent.
type Delta struct {
	Upserts []RelationDelta `json:"upserts,omitempty"`
	Deletes []RelationDelta `json:"deletes,omitempty"`
}

// RelationDelta addresses one relation's tuples within a Delta. Tuples use
// the same JSON scalar rows as the database codec. Attrs is only consulted
// when an upsert targets a relation the database does not have yet — it
// then supplies the new relation's schema — or, when present on an
// existing relation, is validated against its schema so a delta computed
// against a different schema fails instead of silently corrupting.
type RelationDelta struct {
	Name   string   `json:"name"`
	Attrs  []string `json:"attrs,omitempty"`
	Tuples [][]any  `json:"tuples"`
}

// DeltaResult reports what ApplyDelta produced: the new database version,
// the names of relations whose content actually changed (sorted), how many
// tuples were inserted and removed, and the touched tuples themselves.
// Mutated tracks net content, not applied operations: an empty Mutated
// means DB is content-identical to the receiver — either nothing applied
// (Upserted and Deleted zero), or a self-canceling delta whose steps undid
// each other.
type DeltaResult struct {
	DB       *Database
	Mutated  []string
	Upserted int
	Deleted  int
	// Touched reports, per mutated relation, the net tuple-level change:
	// exactly the tuples whose membership flipped between the receiver and
	// DB. The incremental set-hash machinery walks exactly these tuples, so
	// the report is free; a self-canceling pair (upsert X, delete X) cancels
	// out, and relations reverted to the receiver's pointer carry no entry.
	// Downstream consumers (result repair, replica catch-up) key off
	// Tuple.Key() of these rows.
	Touched map[string]TouchSet
}

// TouchSet is one relation's net tuple change under a delta: Added holds
// tuples present in the new version but not the old, Removed the reverse.
type TouchSet struct {
	Added   []Tuple
	Removed []Tuple
}

// ApplyDelta returns a new database with the delta applied, leaving the
// receiver untouched: relations the delta does not change are shared by
// pointer with the receiver (copy-on-write), mutated relations are cloned
// before their first change, and the per-relation set hashes keep the new
// version's Fingerprint an O(relations) combine instead of a full rehash.
// Readers holding the old database keep an immutable snapshot.
//
// Errors (unknown relation on delete, missing Attrs for a new relation,
// schema or arity mismatch, undecodable value) leave no observable effect:
// the receiver is never modified either way.
func (d *Database) ApplyDelta(delta Delta) (DeltaResult, error) {
	next := &Database{rels: make(map[string]*Relation, len(d.rels)), order: append([]string(nil), d.order...)}
	for k, v := range d.rels {
		next.rels[k] = v
	}
	res := DeltaResult{DB: next}
	// changed tracks per-relation effect; created relations count as
	// changed even when no tuple lands (the schema itself is new content).
	changed := make(map[string]bool)
	// owned maps relations already cloned for this delta, so several
	// RelationDelta entries against one relation mutate one clone.
	owned := make(map[string]*Relation)
	// added / removed accumulate the net touched tuples per relation, keyed
	// by Tuple.Key(). Upserts apply before deletes, so a delete of a tuple
	// this delta added cancels the add instead of recording a removal.
	added := make(map[string]map[string]Tuple)
	removed := make(map[string]map[string]Tuple)
	touch := func(m map[string]map[string]Tuple, name string) map[string]Tuple {
		if m[name] == nil {
			m[name] = make(map[string]Tuple)
		}
		return m[name]
	}

	target := func(rd RelationDelta, forDelete bool) (*Relation, error) {
		if r, ok := owned[rd.Name]; ok {
			if err := checkAttrs(r, rd.Attrs); err != nil {
				return nil, err
			}
			return r, nil
		}
		r := next.rels[rd.Name]
		switch {
		case r == nil && forDelete:
			return nil, fmt.Errorf("relation: delta deletes from unknown relation %q", rd.Name)
		case r == nil && len(rd.Attrs) == 0:
			return nil, fmt.Errorf("relation: delta upserts into unknown relation %q (attrs required to create it)", rd.Name)
		case r == nil:
			r = NewRelation(NewSchema(rd.Name, append([]string(nil), rd.Attrs...)...))
			changed[rd.Name] = true
		default:
			if err := checkAttrs(r, rd.Attrs); err != nil {
				return nil, err
			}
			r = r.Clone()
		}
		owned[rd.Name] = r
		next.Add(r)
		return r, nil
	}

	for _, rd := range delta.Upserts {
		r, err := target(rd, false)
		if err != nil {
			return DeltaResult{}, err
		}
		for _, row := range rd.Tuples {
			t, err := decodeRow(rd.Name, row)
			if err != nil {
				return DeltaResult{}, err
			}
			before := r.Len()
			if err := r.Insert(t); err != nil {
				return DeltaResult{}, err
			}
			if r.Len() != before {
				res.Upserted++
				changed[rd.Name] = true
				touch(added, rd.Name)[t.Key()] = t
			}
		}
	}
	for _, rd := range delta.Deletes {
		r, err := target(rd, true)
		if err != nil {
			return DeltaResult{}, err
		}
		for _, row := range rd.Tuples {
			t, err := decodeRow(rd.Name, row)
			if err != nil {
				return DeltaResult{}, err
			}
			if r.Delete(t) {
				res.Deleted++
				changed[rd.Name] = true
				if k := t.Key(); mapHas(added[rd.Name], k) {
					delete(added[rd.Name], k)
				} else {
					touch(removed, rd.Name)[k] = t
				}
			}
		}
	}

	// Relations whose content ended up identical to the receiver's keep
	// the receiver's pointer, so sharing (and pointer identity for
	// downstream caches) is preserved — both for pure no-op entries and
	// for self-canceling deltas (upsert X, delete X) whose intermediate
	// steps changed the relation but whose net effect is nothing. The
	// digest comparison is O(schema) thanks to the incremental set hash.
	for name := range owned {
		orig := d.rels[name]
		if orig != nil && changed[name] && owned[name].fingerprintDigest() == orig.fingerprintDigest() {
			changed[name] = false
		}
		if !changed[name] && orig != nil {
			next.rels[name] = orig
		}
	}
	for name, ch := range changed {
		if ch {
			res.Mutated = append(res.Mutated, name)
		}
	}
	sort.Strings(res.Mutated)
	if len(res.Mutated) > 0 {
		res.Touched = make(map[string]TouchSet, len(res.Mutated))
		for _, name := range res.Mutated {
			res.Touched[name] = TouchSet{
				Added:   sortedTuples(added[name]),
				Removed: sortedTuples(removed[name]),
			}
		}
	}
	return res, nil
}

func mapHas(m map[string]Tuple, k string) bool {
	_, ok := m[k]
	return ok
}

// sortedTuples flattens a keyed touch accumulator into a deterministic,
// canonically ordered slice (nil when empty).
func sortedTuples(m map[string]Tuple) []Tuple {
	if len(m) == 0 {
		return nil
	}
	out := make([]Tuple, 0, len(m))
	for _, t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// checkAttrs validates a RelationDelta's optional schema claim against the
// relation it addresses.
func checkAttrs(r *Relation, attrs []string) error {
	if len(attrs) == 0 {
		return nil
	}
	have := r.Schema().Attrs
	if len(attrs) != len(have) {
		return fmt.Errorf("relation: delta schema for %q has %d attrs, relation has %d", r.Name(), len(attrs), len(have))
	}
	for i, a := range attrs {
		if a != have[i] {
			return fmt.Errorf("relation: delta schema for %q names attr %d %q, relation has %q", r.Name(), i, a, have[i])
		}
	}
	return nil
}

// decodeRow converts one wire tuple row of a RelationDelta.
func decodeRow(name string, row []any) (Tuple, error) {
	t := make(Tuple, len(row))
	for i, x := range row {
		v, err := valueFromJSON(x)
		if err != nil {
			return nil, fmt.Errorf("relation %s: %w", name, err)
		}
		t[i] = v
	}
	return t, nil
}
