package relation

import (
	"fmt"
	"sort"
)

// Delta is the wire form of an incremental collection mutation: tuples to
// upsert and tuples to delete, grouped by relation. Upserts are applied
// before deletes. A delta is a statement about membership, not an edit
// script: upserting a tuple that is already present and deleting a tuple
// that is absent are both no-ops, so replaying a delta is idempotent.
type Delta struct {
	Upserts []RelationDelta `json:"upserts,omitempty"`
	Deletes []RelationDelta `json:"deletes,omitempty"`
}

// RelationDelta addresses one relation's tuples within a Delta. Tuples use
// the same JSON scalar rows as the database codec. Attrs is only consulted
// when an upsert targets a relation the database does not have yet — it
// then supplies the new relation's schema — or, when present on an
// existing relation, is validated against its schema so a delta computed
// against a different schema fails instead of silently corrupting.
type RelationDelta struct {
	Name   string   `json:"name"`
	Attrs  []string `json:"attrs,omitempty"`
	Tuples [][]any  `json:"tuples"`
}

// DeltaResult reports what ApplyDelta produced: the new database version,
// the names of relations whose content actually changed (sorted), and how
// many tuples were inserted and removed. Mutated tracks net content, not
// applied operations: an empty Mutated means DB is content-identical to
// the receiver — either nothing applied (Upserted and Deleted zero), or a
// self-canceling delta whose steps undid each other.
type DeltaResult struct {
	DB       *Database
	Mutated  []string
	Upserted int
	Deleted  int
}

// ApplyDelta returns a new database with the delta applied, leaving the
// receiver untouched: relations the delta does not change are shared by
// pointer with the receiver (copy-on-write), mutated relations are cloned
// before their first change, and the per-relation set hashes keep the new
// version's Fingerprint an O(relations) combine instead of a full rehash.
// Readers holding the old database keep an immutable snapshot.
//
// Errors (unknown relation on delete, missing Attrs for a new relation,
// schema or arity mismatch, undecodable value) leave no observable effect:
// the receiver is never modified either way.
func (d *Database) ApplyDelta(delta Delta) (DeltaResult, error) {
	next := &Database{rels: make(map[string]*Relation, len(d.rels)), order: append([]string(nil), d.order...)}
	for k, v := range d.rels {
		next.rels[k] = v
	}
	res := DeltaResult{DB: next}
	// changed tracks per-relation effect; created relations count as
	// changed even when no tuple lands (the schema itself is new content).
	changed := make(map[string]bool)
	// owned maps relations already cloned for this delta, so several
	// RelationDelta entries against one relation mutate one clone.
	owned := make(map[string]*Relation)

	target := func(rd RelationDelta, forDelete bool) (*Relation, error) {
		if r, ok := owned[rd.Name]; ok {
			if err := checkAttrs(r, rd.Attrs); err != nil {
				return nil, err
			}
			return r, nil
		}
		r := next.rels[rd.Name]
		switch {
		case r == nil && forDelete:
			return nil, fmt.Errorf("relation: delta deletes from unknown relation %q", rd.Name)
		case r == nil && len(rd.Attrs) == 0:
			return nil, fmt.Errorf("relation: delta upserts into unknown relation %q (attrs required to create it)", rd.Name)
		case r == nil:
			r = NewRelation(NewSchema(rd.Name, append([]string(nil), rd.Attrs...)...))
			changed[rd.Name] = true
		default:
			if err := checkAttrs(r, rd.Attrs); err != nil {
				return nil, err
			}
			r = r.Clone()
		}
		owned[rd.Name] = r
		next.Add(r)
		return r, nil
	}

	for _, rd := range delta.Upserts {
		r, err := target(rd, false)
		if err != nil {
			return DeltaResult{}, err
		}
		for _, row := range rd.Tuples {
			t, err := decodeRow(rd.Name, row)
			if err != nil {
				return DeltaResult{}, err
			}
			before := r.Len()
			if err := r.Insert(t); err != nil {
				return DeltaResult{}, err
			}
			if r.Len() != before {
				res.Upserted++
				changed[rd.Name] = true
			}
		}
	}
	for _, rd := range delta.Deletes {
		r, err := target(rd, true)
		if err != nil {
			return DeltaResult{}, err
		}
		for _, row := range rd.Tuples {
			t, err := decodeRow(rd.Name, row)
			if err != nil {
				return DeltaResult{}, err
			}
			if r.Delete(t) {
				res.Deleted++
				changed[rd.Name] = true
			}
		}
	}

	// Relations whose content ended up identical to the receiver's keep
	// the receiver's pointer, so sharing (and pointer identity for
	// downstream caches) is preserved — both for pure no-op entries and
	// for self-canceling deltas (upsert X, delete X) whose intermediate
	// steps changed the relation but whose net effect is nothing. The
	// digest comparison is O(schema) thanks to the incremental set hash.
	for name := range owned {
		orig := d.rels[name]
		if orig != nil && changed[name] && owned[name].fingerprintDigest() == orig.fingerprintDigest() {
			changed[name] = false
		}
		if !changed[name] && orig != nil {
			next.rels[name] = orig
		}
	}
	for name, ch := range changed {
		if ch {
			res.Mutated = append(res.Mutated, name)
		}
	}
	sort.Strings(res.Mutated)
	return res, nil
}

// checkAttrs validates a RelationDelta's optional schema claim against the
// relation it addresses.
func checkAttrs(r *Relation, attrs []string) error {
	if len(attrs) == 0 {
		return nil
	}
	have := r.Schema().Attrs
	if len(attrs) != len(have) {
		return fmt.Errorf("relation: delta schema for %q has %d attrs, relation has %d", r.Name(), len(attrs), len(have))
	}
	for i, a := range attrs {
		if a != have[i] {
			return fmt.Errorf("relation: delta schema for %q names attr %d %q, relation has %q", r.Name(), i, a, have[i])
		}
	}
	return nil
}

// decodeRow converts one wire tuple row of a RelationDelta.
func decodeRow(name string, row []any) (Tuple, error) {
	t := make(Tuple, len(row))
	for i, x := range row {
		v, err := valueFromJSON(x)
		if err != nil {
			return nil, fmt.Errorf("relation %s: %w", name, err)
		}
		t[i] = v
	}
	return t, nil
}
