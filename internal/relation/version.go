package relation

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"sort"
	"strconv"
)

// fpAcc is an order-independent set hash: the XOR of the sha256 digests of
// the member tuple keys. Insert and Delete both toggle the member's digest
// in, so the accumulator is maintained in O(1) per mutation and two
// relations hold equal accumulators iff they hold equal tuple sets (up to
// sha256 collisions; relations deduplicate, so no member ever appears
// twice and even-multiplicity cancellation cannot occur). A client could in
// principle search for colliding tuple sets within its own collection, but
// the only thing that buys is serving that client its own stale cache
// entries, so the construction is not required to resist it.
type fpAcc [sha256.Size]byte

// toggle flips tuple key k in or out of the set hash.
func (a *fpAcc) toggle(k string) {
	d := sha256.Sum256([]byte(k))
	for i := range a {
		a[i] ^= d[i]
	}
}

// Fingerprint returns a stable content hash of one relation: its name,
// schema, cardinality and tuple-set hash. Because the set hash is
// maintained incrementally by Insert and Delete, computing the fingerprint
// is O(|schema|) regardless of how many tuples the relation holds.
func (r *Relation) Fingerprint() string {
	sum := r.fingerprintDigest()
	return hex.EncodeToString(sum[:])
}

func (r *Relation) fingerprintDigest() [sha256.Size]byte {
	if p := r.digest.Load(); p != nil {
		return *p
	}
	h := sha256.New()
	// Counts delimit every section, so the stream decodes unambiguously
	// left-to-right: an attribute named like a tuple key cannot shift the
	// boundaries and collide with different content.
	hashString(h, r.schema.Name)
	hashString(h, strconv.Itoa(len(r.schema.Attrs)))
	for _, a := range r.schema.Attrs {
		hashString(h, a)
	}
	hashString(h, strconv.Itoa(len(r.tuples)))
	h.Write(r.acc[:])
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	r.digest.Store(&sum)
	return sum
}

// Fingerprint returns a stable content hash of the database: relations are
// visited in sorted-name order, each contributing its relation-level
// fingerprint, so the result depends only on contents — not on insertion
// order, tuple order, or how the database was built or decoded. The serving
// layer uses it as the content-addressed half of a collection's identity:
// reloading byte-identical data keeps cached solve results valid, while any
// tuple-level change produces a new fingerprint. Per-relation set hashes
// are maintained incrementally, so the whole-database fingerprint costs
// O(relations), not O(tuples) — ApplyDelta relies on this to version
// mutations without a full rehash.
func (d *Database) Fingerprint() string {
	names := append([]string(nil), d.order...)
	sort.Strings(names)
	return combineFingerprints(names, func(name string) *Relation { return d.rels[name] })
}

// FingerprintOf returns the content hash of the named subset of the
// database: the names are deduplicated and sorted, and a name with no
// relation contributes an explicit absence marker (so adding or dropping a
// whole relation changes the subset fingerprint that mentions it). The
// serving layer keys cached results on the subset a request actually
// reads, which is what lets entries survive deltas to unrelated relations.
func (d *Database) FingerprintOf(names ...string) string {
	uniq := append([]string(nil), names...)
	sort.Strings(uniq)
	w := 0
	for i, n := range uniq {
		if i == 0 || n != uniq[i-1] {
			uniq[w] = n
			w++
		}
	}
	return combineFingerprints(uniq[:w], func(name string) *Relation { return d.rels[name] })
}

// combineFingerprints hashes the relation-level fingerprints for names (in
// the given order) into one digest, with explicit present/absent markers.
func combineFingerprints(names []string, lookup func(string) *Relation) string {
	h := sha256.New()
	hashString(h, strconv.Itoa(len(names)))
	for _, name := range names {
		if r := lookup(name); r != nil {
			hashString(h, "1")
			sum := r.fingerprintDigest()
			h.Write(sum[:])
		} else {
			hashString(h, "0")
			hashString(h, name)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashString writes s to h with a separator, so that concatenation
// ambiguities ("ab"+"c" vs "a"+"bc") cannot collide.
func hashString(h hash.Hash, s string) {
	h.Write([]byte(s))
	h.Write([]byte{0})
}
