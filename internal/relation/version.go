package relation

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"sort"
	"strconv"
)

// Fingerprint returns a stable content hash of the database: relations are
// visited in sorted-name order, each contributing its schema and its tuples
// in canonical tuple order, so the fingerprint depends only on contents —
// not on insertion order, tuple order, or how the database was built or
// decoded. The serving layer uses it as the content-addressed half of a
// collection's identity: reloading byte-identical data keeps cached solve
// results valid, while any tuple-level change produces a new fingerprint.
func (d *Database) Fingerprint() string {
	h := sha256.New()
	names := append([]string(nil), d.order...)
	sort.Strings(names)
	// Counts delimit every section, so the stream decodes unambiguously
	// left-to-right: an attribute named like a tuple key (or a tuple key
	// shaped like the next relation's name) cannot shift the boundaries
	// and collide with different content.
	hashString(h, strconv.Itoa(len(names)))
	for _, name := range names {
		r := d.rels[name]
		hashString(h, r.Name())
		attrs := r.Schema().Attrs
		hashString(h, strconv.Itoa(len(attrs)))
		for _, a := range attrs {
			hashString(h, a)
		}
		tuples := r.Sorted().Tuples()
		hashString(h, strconv.Itoa(len(tuples)))
		for _, t := range tuples {
			hashString(h, t.Key())
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashString writes s to h with a separator, so that concatenation
// ambiguities ("ab"+"c" vs "a"+"bc") cannot collide.
func hashString(h hash.Hash, s string) {
	h.Write([]byte(s))
	h.Write([]byte{0})
}
