package relation

import (
	"strings"
	"testing"
)

func deltaDB() *Database {
	r := FromTuples(NewSchema("r", "a", "b"),
		NewTuple(Int(1), Str("x")), NewTuple(Int(2), Str("y")))
	s := FromTuples(NewSchema("s", "c"), NewTuple(Float(1.5)))
	return NewDatabase().Add(r).Add(s)
}

// A delta-applied database must be indistinguishable — fingerprint and
// content — from one built from scratch with the same tuples, and the
// receiver must be untouched.
func TestApplyDeltaMatchesRebuild(t *testing.T) {
	db := deltaDB()
	before := db.Fingerprint()
	res, err := db.ApplyDelta(Delta{
		Upserts: []RelationDelta{{Name: "r", Tuples: [][]any{{3, "z"}}}},
		Deletes: []RelationDelta{{Name: "r", Tuples: [][]any{{1, "x"}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Upserted != 1 || res.Deleted != 1 {
		t.Fatalf("upserted=%d deleted=%d, want 1/1", res.Upserted, res.Deleted)
	}
	if len(res.Mutated) != 1 || res.Mutated[0] != "r" {
		t.Fatalf("mutated=%v, want [r]", res.Mutated)
	}
	if db.Fingerprint() != before {
		t.Fatal("ApplyDelta mutated the receiver")
	}
	want := NewDatabase().
		Add(FromTuples(NewSchema("r", "a", "b"), NewTuple(Int(2), Str("y")), NewTuple(Int(3), Str("z")))).
		Add(FromTuples(NewSchema("s", "c"), NewTuple(Float(1.5))))
	if res.DB.Fingerprint() != want.Fingerprint() {
		t.Fatal("delta-applied fingerprint differs from a from-scratch build")
	}
	if !res.DB.Relation("r").Contains(NewTuple(Int(3), Str("z"))) ||
		res.DB.Relation("r").Contains(NewTuple(Int(1), Str("x"))) {
		t.Fatal("delta content not applied")
	}
}

// Unmutated relations must be shared by pointer between the versions, and
// no-op entries (upserting present tuples, deleting absent ones) must not
// break the sharing or bump the fingerprint.
func TestApplyDeltaSharesUnmutatedRelations(t *testing.T) {
	db := deltaDB()
	res, err := db.ApplyDelta(Delta{
		Upserts: []RelationDelta{{Name: "r", Tuples: [][]any{{3, "z"}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.Relation("s") != db.Relation("s") {
		t.Fatal("unmutated relation was copied")
	}
	if res.DB.Relation("r") == db.Relation("r") {
		t.Fatal("mutated relation is shared with the receiver")
	}

	noop, err := db.ApplyDelta(Delta{
		Upserts: []RelationDelta{{Name: "r", Tuples: [][]any{{1, "x"}}}},
		Deletes: []RelationDelta{{Name: "s", Tuples: [][]any{{99.0}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(noop.Mutated) != 0 || noop.Upserted != 0 || noop.Deleted != 0 {
		t.Fatalf("no-op delta reported changes: %+v", noop)
	}
	if noop.DB.Relation("r") != db.Relation("r") || noop.DB.Relation("s") != db.Relation("s") {
		t.Fatal("no-op delta copied relations")
	}
	if noop.DB.Fingerprint() != db.Fingerprint() {
		t.Fatal("no-op delta changed the fingerprint")
	}
}

// A self-canceling delta (upsert X then delete X) applies operations but
// changes nothing net: Mutated must be empty and sharing preserved, so an
// at-least-once change feed delivering collapsed add+remove pairs never
// triggers spurious invalidation downstream.
func TestApplyDeltaSelfCancelingIsNoop(t *testing.T) {
	db := deltaDB()
	res, err := db.ApplyDelta(Delta{
		Upserts: []RelationDelta{{Name: "r", Tuples: [][]any{{9, "q"}}}},
		Deletes: []RelationDelta{{Name: "r", Tuples: [][]any{{9, "q"}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Upserted != 1 || res.Deleted != 1 {
		t.Fatalf("upserted=%d deleted=%d, want 1/1 (operations did apply)", res.Upserted, res.Deleted)
	}
	if len(res.Mutated) != 0 {
		t.Fatalf("mutated=%v, want none: net content is unchanged", res.Mutated)
	}
	if res.DB.Relation("r") != db.Relation("r") {
		t.Fatal("net-unchanged relation was not re-shared")
	}
	if res.DB.Fingerprint() != db.Fingerprint() {
		t.Fatal("self-canceling delta changed the fingerprint")
	}
}

func TestApplyDeltaCreatesRelations(t *testing.T) {
	db := deltaDB()
	res, err := db.ApplyDelta(Delta{
		Upserts: []RelationDelta{{Name: "t", Attrs: []string{"k", "v"}, Tuples: [][]any{{1, "one"}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("t") != nil {
		t.Fatal("creation leaked into the receiver")
	}
	r := res.DB.Relation("t")
	if r == nil || r.Len() != 1 || r.Schema().Attrs[1] != "v" {
		t.Fatalf("created relation wrong: %v", r)
	}
	if len(res.Mutated) != 1 || res.Mutated[0] != "t" {
		t.Fatalf("mutated=%v, want [t]", res.Mutated)
	}
}

func TestApplyDeltaErrors(t *testing.T) {
	db := deltaDB()
	cases := []struct {
		name string
		d    Delta
		want string
	}{
		{"delete unknown relation", Delta{Deletes: []RelationDelta{{Name: "nope", Tuples: [][]any{{1}}}}}, "unknown relation"},
		{"upsert unknown relation without attrs", Delta{Upserts: []RelationDelta{{Name: "nope", Tuples: [][]any{{1}}}}}, "attrs required"},
		{"schema attr mismatch", Delta{Upserts: []RelationDelta{{Name: "r", Attrs: []string{"a", "WRONG"}, Tuples: nil}}}, "names attr"},
		{"schema arity mismatch", Delta{Upserts: []RelationDelta{{Name: "r", Attrs: []string{"a"}, Tuples: nil}}}, "attrs"},
		{"tuple arity mismatch", Delta{Upserts: []RelationDelta{{Name: "r", Tuples: [][]any{{1}}}}}, "arity"},
		{"bad value", Delta{Upserts: []RelationDelta{{Name: "r", Tuples: [][]any{{1, []any{"nested"}}}}}}, "unsupported"},
	}
	before := db.Fingerprint()
	for _, tc := range cases {
		if _, err := db.ApplyDelta(tc.d); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err=%v, want substring %q", tc.name, err, tc.want)
		}
	}
	if db.Fingerprint() != before {
		t.Fatal("failed deltas left a trace on the receiver")
	}
}

// Copy-on-write: mutating either side of a Clone must not leak into the
// other, in both directions and after repeated clones.
func TestRelationCloneCopyOnWrite(t *testing.T) {
	orig := FromTuples(NewSchema("r", "a"), NewTuple(Int(1)), NewTuple(Int(2)))
	snap := orig.Clone()
	if err := orig.Insert(NewTuple(Int(3))); err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 2 || snap.Contains(NewTuple(Int(3))) {
		t.Fatal("insert on the original leaked into the clone")
	}
	snap2 := orig.Clone()
	if !snap2.Delete(NewTuple(Int(1))) {
		t.Fatal("delete on clone failed")
	}
	if !orig.Contains(NewTuple(Int(1))) {
		t.Fatal("delete on the clone leaked into the original")
	}
	// Sort is a mutation too: a shared clone must copy before reordering.
	snap3 := orig.Clone()
	snap3.Sort()
	if orig.Tuples()[0].Compare(NewTuple(Int(1))) != 0 {
		t.Fatal("sort on the clone reordered the original")
	}
	if snap3.Fingerprint() != orig.Fingerprint() {
		t.Fatal("sort changed the content fingerprint")
	}
}

func TestFingerprintOf(t *testing.T) {
	db := deltaDB()
	rOnly := db.FingerprintOf("r")
	if rOnly != db.FingerprintOf("r", "r") {
		t.Fatal("duplicate names change the subset fingerprint")
	}
	res, err := db.ApplyDelta(Delta{Upserts: []RelationDelta{{Name: "s", Tuples: [][]any{{2.5}}}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.FingerprintOf("r") != rOnly {
		t.Fatal("mutating s changed the r-subset fingerprint")
	}
	if res.DB.FingerprintOf("s") == db.FingerprintOf("s") {
		t.Fatal("mutating s did not change the s-subset fingerprint")
	}
	// Absence is content: the subset fingerprint must distinguish a missing
	// relation from any present one, and react when it appears.
	if db.FingerprintOf("ghost") == db.FingerprintOf("other") {
		t.Fatal("two absent names share a fingerprint")
	}
	created, err := db.ApplyDelta(Delta{Upserts: []RelationDelta{{Name: "ghost", Attrs: []string{"x"}, Tuples: nil}}})
	if err != nil {
		t.Fatal(err)
	}
	if created.DB.FingerprintOf("ghost") == db.FingerprintOf("ghost") {
		t.Fatal("creating a relation did not change its subset fingerprint")
	}
}

// The incrementally maintained set hash must agree with a from-scratch
// build after arbitrary insert/delete interleavings.
func TestIncrementalFingerprintAgreesWithRebuild(t *testing.T) {
	r := NewRelation(NewSchema("r", "a"))
	for i := 0; i < 20; i++ {
		if err := r.Insert(NewTuple(Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i += 2 {
		r.Delete(NewTuple(Int(int64(i))))
	}
	want := NewRelation(NewSchema("r", "a"))
	for i := 1; i < 20; i += 2 {
		if err := want.Insert(NewTuple(Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if r.Fingerprint() != want.Fingerprint() {
		t.Fatal("incremental fingerprint diverged from rebuild")
	}
}

// Touched must report exactly the tuples whose membership flipped — net of
// self-canceling pairs and ineffective operations — keyed per mutated
// relation, with no entry for relations that reverted to the original
// pointer.
func TestApplyDeltaReportsTouchedTuples(t *testing.T) {
	db := deltaDB()
	res, err := db.ApplyDelta(Delta{
		Upserts: []RelationDelta{{Name: "r", Tuples: [][]any{
			{3, "z"}, // effective insert
			{2, "y"}, // already present: no touch
			{4, "w"}, // inserted then deleted below: cancels out
		}}},
		Deletes: []RelationDelta{{Name: "r", Tuples: [][]any{
			{1, "x"},  // effective delete
			{4, "w"},  // cancels the upsert above
			{9, "no"}, // absent: no touch
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, ok := res.Touched["r"]
	if !ok || len(res.Touched) != 1 {
		t.Fatalf("touched relations = %v, want exactly [r]", res.Touched)
	}
	if len(ts.Added) != 1 || ts.Added[0].Compare(NewTuple(Int(3), Str("z"))) != 0 {
		t.Fatalf("added = %v, want [(3 z)]", ts.Added)
	}
	if len(ts.Removed) != 1 || ts.Removed[0].Compare(NewTuple(Int(1), Str("x"))) != 0 {
		t.Fatalf("removed = %v, want [(1 x)]", ts.Removed)
	}

	// A fully self-canceling delta reports no touched relations at all.
	noop, err := db.ApplyDelta(Delta{
		Upserts: []RelationDelta{{Name: "s", Tuples: [][]any{{2.5}}}},
		Deletes: []RelationDelta{{Name: "s", Tuples: [][]any{{2.5}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(noop.Mutated) != 0 || noop.Touched != nil {
		t.Fatalf("self-canceling delta: mutated=%v touched=%v, want none", noop.Mutated, noop.Touched)
	}
}
