package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Int(3), KindInt},
		{Int(-9), KindInt},
		{Float(2.5), KindFloat},
		{Str("abc"), KindString},
		{Str(""), KindString},
		{Bool(true), KindInt},
		{Bool(false), KindInt},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(5), Int(5), 0},
		{Int(2), Float(2.0), 0},
		{Float(1.5), Int(2), -1},
		{Float(2.5), Int(2), 1},
		{Int(7), Str("a"), -1},
		{Str("a"), Int(7), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Str("x"), Str("x"), 0},
		{Int(math.MaxInt64), Int(math.MaxInt64 - 1), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.a.Equal(c.b); got != (c.want == 0) {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want == 0)
		}
		if got := c.a.Less(c.b); got != (c.want < 0) {
			t.Errorf("Less(%v, %v) = %v, want %v", c.a, c.b, got, c.want < 0)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return Str(a).Compare(Str(b)) == -Str(b).Compare(Str(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestValueNaNNormalised(t *testing.T) {
	v := Float(math.NaN())
	if !v.Equal(Float(0)) {
		t.Errorf("NaN should normalise to 0, got %v", v)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Int(-1), "-1"},
		{Float(2.5), "2.5"},
		{Str("hi"), `"hi"`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueMapKeyEquality(t *testing.T) {
	m := map[Value]int{}
	m[Int(1)] = 1
	m[Str("1")] = 2
	m[Float(1.5)] = 3
	if len(m) != 3 {
		t.Fatalf("expected 3 distinct keys, got %d", len(m))
	}
	if m[Int(1)] != 1 || m[Str("1")] != 2 || m[Float(1.5)] != 3 {
		t.Fatal("map lookup mismatch")
	}
}
