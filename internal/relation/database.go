package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Database is a named collection of relations: the item collection D of the
// paper. The relation iteration order is the insertion order, kept explicit
// so all algorithms are deterministic.
type Database struct {
	rels  map[string]*Relation
	order []string
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// Add registers a relation, replacing any previous relation with the same
// name.
func (d *Database) Add(r *Relation) *Database {
	if _, ok := d.rels[r.Name()]; !ok {
		d.order = append(d.order, r.Name())
	}
	d.rels[r.Name()] = r
	return d
}

// Relation returns the named relation, or nil if absent.
func (d *Database) Relation(name string) *Relation { return d.rels[name] }

// Names returns the relation names in insertion order.
func (d *Database) Names() []string { return d.order }

// Size returns the total number of tuples, the |D| of the paper's
// data-complexity statements.
func (d *Database) Size() int {
	n := 0
	for _, name := range d.order {
		n += d.rels[name].Len()
	}
	return n
}

// Clone returns an independent copy. Relations are copy-on-write clones
// (see Relation.Clone), so cloning a large collection is O(relations):
// tuple storage stays shared until one side mutates a relation, at which
// point that side copies first. The serving layer snapshots whole
// collections this way.
func (d *Database) Clone() *Database {
	c := NewDatabase()
	for _, name := range d.order {
		c.Add(d.rels[name].Clone())
	}
	return c
}

// WithRelation returns a shallow overlay of d in which r is added (or
// replaces the relation of the same name). The original database is not
// modified; all other relations are shared. This is how compatibility
// constraints Qc are evaluated: Qc(N, D) is Qc over d.WithRelation(RQ := N).
func (d *Database) WithRelation(r *Relation) *Database {
	c := &Database{rels: make(map[string]*Relation, len(d.rels)+1)}
	c.order = append(c.order, d.order...)
	for k, v := range d.rels {
		c.rels[k] = v
	}
	if _, ok := c.rels[r.Name()]; !ok {
		c.order = append(c.order, r.Name())
	}
	c.rels[r.Name()] = r
	return c
}

// ActiveDomain returns the sorted set of all values appearing in the
// database. Query constants are added by the callers that need the full
// adom(Q, D) of the paper.
func (d *Database) ActiveDomain() []Value {
	seen := make(map[Value]struct{})
	var vals []Value
	for _, name := range d.order {
		for _, t := range d.rels[name].Tuples() {
			for _, v := range t {
				if _, ok := seen[v]; !ok {
					seen[v] = struct{}{}
					vals = append(vals, v)
				}
			}
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Less(vals[j]) })
	return vals
}

// ActiveDomainOf returns the sorted set of values appearing in column attr
// of relation name; it is used to bound the D-equivalent relaxation
// thresholds of Section 7.
func (d *Database) ActiveDomainOf(name, attr string) []Value {
	r := d.rels[name]
	if r == nil {
		return nil
	}
	idx := r.Schema().AttrIndex(attr)
	if idx < 0 {
		return nil
	}
	seen := make(map[Value]struct{})
	var vals []Value
	for _, t := range r.Tuples() {
		if _, ok := seen[t[idx]]; !ok {
			seen[t[idx]] = struct{}{}
			vals = append(vals, t[idx])
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Less(vals[j]) })
	return vals
}

// String renders all relations.
func (d *Database) String() string {
	var b strings.Builder
	for i, name := range d.order {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprint(&b, d.rels[name])
	}
	return b.String()
}
