package relation

import "testing"

func fpDB(order []string) *Database {
	r := FromTuples(NewSchema("r", "a", "b"),
		NewTuple(Int(1), Str("x")), NewTuple(Int(2), Str("y")))
	s := FromTuples(NewSchema("s", "c"), NewTuple(Float(1.5)))
	db := NewDatabase()
	for _, name := range order {
		if name == "r" {
			db.Add(r)
		} else {
			db.Add(s)
		}
	}
	return db
}

func TestFingerprintIgnoresInsertionOrder(t *testing.T) {
	a := fpDB([]string{"r", "s"})
	b := fpDB([]string{"s", "r"})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on relation insertion order")
	}
	if a.Fingerprint() != a.Clone().Fingerprint() {
		t.Fatal("clone changed the fingerprint")
	}
}

func TestFingerprintSeesContent(t *testing.T) {
	a := fpDB([]string{"r", "s"})
	b := fpDB([]string{"r", "s"})
	if err := b.Relation("r").Insert(NewTuple(Int(3), Str("z"))); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("tuple insertion did not change the fingerprint")
	}
	// Renaming a relation is a content change even with identical tuples.
	c := NewDatabase().Add(FromTuples(NewSchema("t", "c"), NewTuple(Float(1.5))))
	d := NewDatabase().Add(FromTuples(NewSchema("u", "c"), NewTuple(Float(1.5))))
	if c.Fingerprint() == d.Fingerprint() {
		t.Fatal("relation name not part of the fingerprint")
	}
}

// Section boundaries must be unambiguous: an attribute named exactly like a
// tuple's key must not collide with the database that has that tuple
// instead of the attribute.
func TestFingerprintSectionBoundaries(t *testing.T) {
	key := NewTuple(Str("x")).Key() // the wire shape of a one-string tuple
	withAttr := NewDatabase().Add(NewRelation(NewSchema("r", "a", key)))
	withTuple := NewDatabase().Add(FromTuples(NewSchema("r", "a"), NewTuple(Str("x"))))
	if withAttr.Fingerprint() == withTuple.Fingerprint() {
		t.Fatal("attr/tuple boundary ambiguity: distinct contents share a fingerprint")
	}
}
