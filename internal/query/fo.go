package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// Formula is a first-order formula over relation atoms and built-in
// predicates (Section 2(c),(e)). ∃FO+ queries use the positive fragment
// (no FNot, no FForall); FO queries use the full language. Evaluation is
// under active-domain semantics: quantifiers range over adom(Q, D).
type Formula interface {
	addFreeVars(set map[string]struct{})
	cloneF() Formula
	String() string
}

// FAtom is an atomic formula.
type FAtom struct{ A Atom }

// FAnd is a conjunction.
type FAnd struct{ Subs []Formula }

// FOr is a disjunction.
type FOr struct{ Subs []Formula }

// FNot is a negation (FO only).
type FNot struct{ Sub Formula }

// FExists is existential quantification over Vars.
type FExists struct {
	Vars []string
	Sub  Formula
}

// FForall is universal quantification over Vars (FO only).
type FForall struct {
	Vars []string
	Sub  Formula
}

// Atomf wraps an atom as a formula.
func Atomf(a Atom) Formula { return &FAtom{A: a} }

// And builds a conjunction.
func And(subs ...Formula) Formula { return &FAnd{Subs: subs} }

// Or builds a disjunction.
func Or(subs ...Formula) Formula { return &FOr{Subs: subs} }

// Not builds a negation.
func Not(sub Formula) Formula { return &FNot{Sub: sub} }

// Exists builds an existential quantification.
func Exists(vars []string, sub Formula) Formula { return &FExists{Vars: vars, Sub: sub} }

// Forall builds a universal quantification.
func Forall(vars []string, sub Formula) Formula { return &FForall{Vars: vars, Sub: sub} }

// Implies builds a → b as ¬a ∨ b.
func Implies(a, b Formula) Formula { return Or(Not(a), b) }

func (f *FAtom) addFreeVars(set map[string]struct{}) { f.A.addVars(set) }
func (f *FAnd) addFreeVars(set map[string]struct{}) {
	for _, s := range f.Subs {
		s.addFreeVars(set)
	}
}
func (f *FOr) addFreeVars(set map[string]struct{}) {
	for _, s := range f.Subs {
		s.addFreeVars(set)
	}
}
func (f *FNot) addFreeVars(set map[string]struct{}) { f.Sub.addFreeVars(set) }
func (f *FExists) addFreeVars(set map[string]struct{}) {
	sub := make(map[string]struct{})
	f.Sub.addFreeVars(sub)
	for _, v := range f.Vars {
		delete(sub, v)
	}
	for v := range sub {
		set[v] = struct{}{}
	}
}
func (f *FForall) addFreeVars(set map[string]struct{}) {
	sub := make(map[string]struct{})
	f.Sub.addFreeVars(sub)
	for _, v := range f.Vars {
		delete(sub, v)
	}
	for v := range sub {
		set[v] = struct{}{}
	}
}

func (f *FAtom) cloneF() Formula { return &FAtom{A: f.A.cloneAtom()} }
func (f *FAnd) cloneF() Formula  { return &FAnd{Subs: cloneFormulas(f.Subs)} }
func (f *FOr) cloneF() Formula   { return &FOr{Subs: cloneFormulas(f.Subs)} }
func (f *FNot) cloneF() Formula  { return &FNot{Sub: f.Sub.cloneF()} }
func (f *FExists) cloneF() Formula {
	return &FExists{Vars: append([]string(nil), f.Vars...), Sub: f.Sub.cloneF()}
}
func (f *FForall) cloneF() Formula {
	return &FForall{Vars: append([]string(nil), f.Vars...), Sub: f.Sub.cloneF()}
}

func cloneFormulas(fs []Formula) []Formula {
	out := make([]Formula, len(fs))
	for i, f := range fs {
		out[i] = f.cloneF()
	}
	return out
}

func (f *FAtom) String() string { return f.A.String() }
func (f *FAnd) String() string  { return joinFormulas(f.Subs, " & ") }
func (f *FOr) String() string   { return joinFormulas(f.Subs, " | ") }
func (f *FNot) String() string  { return "!(" + f.Sub.String() + ")" }
func (f *FExists) String() string {
	return "exists " + strings.Join(f.Vars, ", ") + " (" + f.Sub.String() + ")"
}
func (f *FForall) String() string {
	return "forall " + strings.Join(f.Vars, ", ") + " (" + f.Sub.String() + ")"
}

func joinFormulas(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = "(" + f.String() + ")"
	}
	return strings.Join(parts, sep)
}

// freeVars returns the sorted free variables of a formula.
func freeVars(f Formula) []string {
	set := make(map[string]struct{})
	f.addFreeVars(set)
	return sortedVars(set)
}

// formulaConstants collects constants appearing in a formula (for adom).
func formulaConstants(f Formula, seen map[relation.Value]struct{}, out *[]relation.Value) {
	add := func(t Term) {
		if !t.IsVar {
			if _, ok := seen[t.Const]; !ok {
				seen[t.Const] = struct{}{}
				*out = append(*out, t.Const)
			}
		}
	}
	switch g := f.(type) {
	case *FAtom:
		switch at := g.A.(type) {
		case *RelAtom:
			for _, t := range at.Args {
				add(t)
			}
		case *CmpAtom:
			add(at.Left)
			add(at.Right)
		case *DistAtom:
			add(at.Left)
			add(at.Right)
		}
	case *FAnd:
		for _, s := range g.Subs {
			formulaConstants(s, seen, out)
		}
	case *FOr:
		for _, s := range g.Subs {
			formulaConstants(s, seen, out)
		}
	case *FNot:
		formulaConstants(g.Sub, seen, out)
	case *FExists:
		formulaConstants(g.Sub, seen, out)
	case *FForall:
		formulaConstants(g.Sub, seen, out)
	}
}

// foEval evaluates formulas against a database under active-domain
// semantics.
type foEval struct {
	db   *relation.Database
	adom []relation.Value
}

// enumerate yields every extension of env binding all free variables of f
// (not already bound) under which f holds. env is mutated and restored;
// the callback must not retain it. It returns false if a yield cancelled.
func (e *foEval) enumerate(f Formula, env Binding, yield func(Binding) bool) bool {
	switch g := f.(type) {
	case *FAtom:
		return e.enumAtom(g.A, env, yield)
	case *FAnd:
		var chain func(i int) bool
		chain = func(i int) bool {
			if i == len(g.Subs) {
				return yield(env)
			}
			return e.enumerate(g.Subs[i], env, func(Binding) bool { return chain(i + 1) })
		}
		return chain(0)
	case *FOr:
		unbound := e.unboundFree(f, env)
		seen := make(map[string]struct{})
		for _, sub := range g.Subs {
			cont := e.enumerate(sub, env, func(Binding) bool {
				// The branch bound its own free vars; fill in the rest of
				// f's free vars over the active domain, dedup, and yield.
				return e.fillAndYield(unbound, env, seen, yield)
			})
			if !cont {
				return false
			}
		}
		return true
	case *FNot:
		unbound := e.unboundFree(f, env)
		return e.forEachAssignment(unbound, env, func() bool {
			if e.satisfied(g.Sub, env) {
				return true
			}
			return yield(env)
		})
	case *FExists:
		saved := saveVars(env, g.Vars)
		unbound := e.unboundFree(f, env)
		seen := make(map[string]struct{})
		cont := e.enumerate(g.Sub, env, func(Binding) bool {
			// Hide the witness bindings of the quantified variables and
			// reinstate any outer bindings they shadowed, so the parent
			// sees env exactly as at entry.
			stash := saveVars(env, g.Vars)
			restoreVars(env, saved)
			c := e.fillAndYield(unbound, env, seen, yield)
			for v := range saved {
				delete(env, v)
			}
			restoreVars(env, stash)
			return c
		})
		restoreVars(env, saved)
		return cont
	case *FForall:
		unbound := e.unboundFree(f, env)
		return e.forEachAssignment(unbound, env, func() bool {
			saved := saveVars(env, g.Vars)
			holds := e.allAssignments(g.Vars, env, func() bool {
				return e.satisfied(g.Sub, env)
			})
			restoreVars(env, saved)
			if !holds {
				return true
			}
			return yield(env)
		})
	default:
		return true
	}
}

// enumAtom enumerates satisfying extensions for an atomic formula.
func (e *foEval) enumAtom(a Atom, env Binding, yield func(Binding) bool) bool {
	if ra, ok := a.(*RelAtom); ok {
		src := e.db.Relation(ra.Pred)
		if src == nil || len(ra.Args) != src.Arity() {
			// Unknown predicate or arity mismatch: caught by Validate; be
			// conservative here and produce no matches.
			return true
		}
		plan := &bodyPlan{rels: []*RelAtom{ra}, relSources: []*relation.Relation{src},
			constraints: make([][]Atom, 2)}
		return plan.run(env, yield)
	}
	// Built-in constraint: test if ground, otherwise enumerate the unbound
	// variables over the active domain (the constants of Q are part of it).
	vars := make(map[string]struct{})
	a.addVars(vars)
	var unbound []string
	for _, v := range sortedVars(vars) {
		if _, ok := env[v]; !ok {
			unbound = append(unbound, v)
		}
	}
	return e.allAssignmentsYield(unbound, env, func() bool {
		ok, ground := groundAtomHolds(a, env)
		if ground && ok {
			return yield(env)
		}
		return true
	})
}

// fillAndYield enumerates active-domain assignments for whichever of vars
// are still unbound, deduplicates complete bindings over vars, and yields.
func (e *foEval) fillAndYield(vars []string, env Binding, seen map[string]struct{}, yield func(Binding) bool) bool {
	var rest []string
	for _, v := range vars {
		if _, ok := env[v]; !ok {
			rest = append(rest, v)
		}
	}
	return e.allAssignmentsYield(rest, env, func() bool {
		key := env.key(vars)
		if _, dup := seen[key]; dup {
			return true
		}
		seen[key] = struct{}{}
		return yield(env)
	})
}

// unboundFree returns f's free variables not bound in env, sorted.
func (e *foEval) unboundFree(f Formula, env Binding) []string {
	var out []string
	for _, v := range freeVars(f) {
		if _, ok := env[v]; !ok {
			out = append(out, v)
		}
	}
	return out
}

// forEachAssignment enumerates all active-domain assignments of vars,
// invoking body for each; body returning false cancels.
func (e *foEval) forEachAssignment(vars []string, env Binding, body func() bool) bool {
	return e.allAssignmentsYield(vars, env, body)
}

// allAssignments reports whether body holds for every active-domain
// assignment of vars.
func (e *foEval) allAssignments(vars []string, env Binding, body func() bool) bool {
	all := true
	e.allAssignmentsYield(vars, env, func() bool {
		if !body() {
			all = false
			return false
		}
		return true
	})
	return all
}

// allAssignmentsYield recursively assigns vars over the active domain.
func (e *foEval) allAssignmentsYield(vars []string, env Binding, body func() bool) bool {
	if len(vars) == 0 {
		return body()
	}
	v := vars[0]
	if _, ok := env[v]; ok {
		return e.allAssignmentsYield(vars[1:], env, body)
	}
	for _, val := range e.adom {
		env[v] = val
		cont := e.allAssignmentsYield(vars[1:], env, body)
		delete(env, v)
		if !cont {
			return false
		}
	}
	return true
}

// satisfied reports whether f holds under env (all free vars of f bound or
// implicitly existential via enumeration).
func (e *foEval) satisfied(f Formula, env Binding) bool {
	found := false
	e.enumerate(f, env, func(Binding) bool {
		found = true
		return false
	})
	return found
}

// saveVars removes vars from env, returning their previous values.
func saveVars(env Binding, vars []string) map[string]relation.Value {
	saved := make(map[string]relation.Value)
	for _, v := range vars {
		if val, ok := env[v]; ok {
			saved[v] = val
			delete(env, v)
		}
	}
	return saved
}

// restoreVars reinstates values saved by saveVars, removing any other
// bindings of those variables first.
func restoreVars(env Binding, saved map[string]relation.Value) {
	for v, val := range saved {
		env[v] = val
	}
}

// FOQuery is a first-order query Name(Head) = Formula, with free(Formula)
// equal to the head variables (Section 2(e)).
type FOQuery struct {
	Name    string
	Head    []Term
	Formula Formula
	// Positive restricts the query to ∃FO+ (Section 2(c)); set by NewEFOPlus.
	Positive bool
}

// NewFO builds an FO query.
func NewFO(name string, head []Term, formula Formula) *FOQuery {
	return &FOQuery{Name: name, Head: head, Formula: formula}
}

// NewEFOPlus builds an ∃FO+ query; Validate rejects negation and universal
// quantification.
func NewEFOPlus(name string, head []Term, formula Formula) *FOQuery {
	return &FOQuery{Name: name, Head: head, Formula: formula, Positive: true}
}

// OutName returns the output relation name.
func (q *FOQuery) OutName() string { return q.Name }

// Arity returns the output arity.
func (q *FOQuery) Arity() int { return len(q.Head) }

// Language classifies the query.
func (q *FOQuery) Language() Language {
	if q.Positive {
		return LangEFOPlus
	}
	return LangFO
}

// Validate checks that head variables are free in the formula and, for
// ∃FO+, that the formula is positive.
func (q *FOQuery) Validate() error {
	free := make(map[string]struct{})
	q.Formula.addFreeVars(free)
	for _, t := range q.Head {
		if t.IsVar {
			if _, ok := free[t.Var]; !ok {
				return fmt.Errorf("query: %s %s: head variable %s is not free in the formula",
					q.Language(), q.Name, t.Var)
			}
		}
	}
	if q.Positive {
		if err := checkPositive(q.Formula); err != nil {
			return fmt.Errorf("query: ∃FO+ %s: %w", q.Name, err)
		}
	}
	return nil
}

// checkPositive rejects FNot and FForall nodes.
func checkPositive(f Formula) error {
	switch g := f.(type) {
	case *FAtom:
		return nil
	case *FAnd:
		for _, s := range g.Subs {
			if err := checkPositive(s); err != nil {
				return err
			}
		}
		return nil
	case *FOr:
		for _, s := range g.Subs {
			if err := checkPositive(s); err != nil {
				return err
			}
		}
		return nil
	case *FExists:
		return checkPositive(g.Sub)
	case *FNot:
		return fmt.Errorf("negation is not allowed in ∃FO+")
	case *FForall:
		return fmt.Errorf("universal quantification is not allowed in ∃FO+")
	default:
		return fmt.Errorf("unknown formula node %T", f)
	}
}

// ActiveDomain returns adom(Q, D): database values plus query constants.
func (q *FOQuery) ActiveDomain(db *relation.Database) []relation.Value {
	adom := db.ActiveDomain()
	seen := make(map[relation.Value]struct{}, len(adom))
	for _, v := range adom {
		seen[v] = struct{}{}
	}
	var extra []relation.Value
	formulaConstants(q.Formula, seen, &extra)
	for _, t := range q.Head {
		if !t.IsVar {
			if _, ok := seen[t.Const]; !ok {
				seen[t.Const] = struct{}{}
				extra = append(extra, t.Const)
			}
		}
	}
	adom = append(adom, extra...)
	sort.Slice(adom, func(i, j int) bool { return adom[i].Less(adom[j]) })
	return adom
}

// Eval computes Q(D) under active-domain semantics.
func (q *FOQuery) Eval(db *relation.Database) (*relation.Relation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	e := &foEval{db: db, adom: q.ActiveDomain(db)}
	out := relation.NewRelation(relation.AutoSchema(q.Name, len(q.Head)))
	var evalErr error
	e.enumerate(q.Formula, Binding{}, func(env Binding) bool {
		t, err := instantiateHead(q.Language().String()+" "+q.Name, q.Head, env)
		if err != nil {
			evalErr = err
			return false
		}
		if err := out.Insert(t); err != nil {
			evalErr = err
			return false
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	out.Sort()
	return out, nil
}

// Clone returns a deep copy.
func (q *FOQuery) Clone() Query {
	return &FOQuery{Name: q.Name, Head: append([]Term(nil), q.Head...),
		Formula: q.Formula.cloneF(), Positive: q.Positive}
}

// String renders the query.
func (q *FOQuery) String() string {
	parts := make([]string, len(q.Head))
	for i, t := range q.Head {
		parts[i] = t.String()
	}
	return q.Name + "(" + strings.Join(parts, ", ") + ") := " + q.Formula.String()
}
