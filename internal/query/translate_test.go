package query

import (
	"math/rand"
	"testing"
)

func TestToUCQSimpleDisjunction(t *testing.T) {
	q := NewEFOPlus("Q", []Term{V("x")},
		Or(Atomf(Rel("S", V("x"))),
			Exists([]string{"b"}, And(Atomf(Rel("R", V("x"), V("b"))), Atomf(Eq(V("b"), CI(2)))))))
	u, err := q.ToUCQ()
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Disjuncts) != 2 {
		t.Fatalf("disjuncts = %d, want 2", len(u.Disjuncts))
	}
	db := testDB()
	a, err := q.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	b, err := u.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("∃FO+ %v vs translated UCQ %v", a, b)
	}
}

func TestToUCQDistributesConjunction(t *testing.T) {
	// (A ∨ B) ∧ (C ∨ D) expands to four disjuncts.
	q := NewEFOPlus("Q", []Term{V("x")},
		And(
			Or(Atomf(Rel("S", V("x"))), Atomf(Rel("S", V("x")))),
			Or(Exists([]string{"y"}, Atomf(Rel("R", V("x"), V("y")))),
				Exists([]string{"y"}, Atomf(Rel("R", V("y"), V("x")))))))
	u, err := q.ToUCQ()
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Disjuncts) != 4 {
		t.Fatalf("disjuncts = %d, want 4", len(u.Disjuncts))
	}
	db := testDB()
	a, _ := q.Eval(db)
	b, err := u.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("∃FO+ %v vs UCQ %v", a, b)
	}
}

func TestToUCQShadowingRenamedApart(t *testing.T) {
	// ∃y R(x, y) ∧ ∃y S(y): the two y's are different variables.
	q := NewEFOPlus("Q", []Term{V("x")},
		And(Exists([]string{"y"}, Atomf(Rel("R", V("x"), V("y")))),
			Exists([]string{"y"}, Atomf(Rel("S", V("y"))))))
	u, err := q.ToUCQ()
	if err != nil {
		t.Fatal(err)
	}
	cq := u.Disjuncts[0]
	vars := atomsVars(cq.Body)
	if _, collision := vars["y"]; collision {
		t.Fatalf("quantified variable leaked un-renamed: %v", cq)
	}
	db := testDB()
	a, _ := q.Eval(db)
	b, _ := u.Eval(db)
	if !a.Equal(b) {
		t.Fatalf("∃FO+ %v vs UCQ %v", a, b)
	}
}

func TestToUCQRejectsNonPositive(t *testing.T) {
	q := NewFO("Q", []Term{V("x")}, Not(Atomf(Rel("S", V("x")))))
	if _, err := q.ToUCQ(); err == nil {
		t.Fatal("negation must be rejected")
	}
}

func TestToUCQRejectsUnsafeDisjunct(t *testing.T) {
	// x free in only one branch: not a safe UCQ.
	q := NewEFOPlus("Q", []Term{V("x"), V("y")},
		Or(Atomf(Rel("R", V("x"), V("y"))), Atomf(Rel("S", V("x")))))
	if _, err := q.ToUCQ(); err == nil {
		t.Fatal("disjunct missing a head variable must be rejected")
	}
}

// randPositive builds a random safe positive formula over R/2 and S/1 whose
// every disjunct binds the head variable h.
func randPositive(rng *rand.Rand, depth int, h string, qdepth int) Formula {
	if depth == 0 {
		if rng.Intn(2) == 0 {
			return Atomf(Rel("S", V(h)))
		}
		fresh := []string{"q0", "q1", "q2"}[qdepth%3]
		return Exists([]string{fresh}, Atomf(Rel("R", V(h), V(fresh))))
	}
	switch rng.Intn(3) {
	case 0:
		return And(randPositive(rng, depth-1, h, qdepth), randPositive(rng, depth-1, h, qdepth+1))
	case 1:
		return Or(randPositive(rng, depth-1, h, qdepth), randPositive(rng, depth-1, h, qdepth+1))
	default:
		fresh := []string{"p0", "p1", "p2"}[qdepth%3]
		return Exists([]string{fresh},
			And(Atomf(Rel("R", V(h), V(fresh))), randPositive(rng, depth-1, h, qdepth+1)))
	}
}

// TestToUCQAgreesOnRandomFormulas is the equivalence property: the ∃FO+
// evaluator and the UCQ evaluator agree through the translation on random
// positive formulas and random databases.
func TestToUCQAgreesOnRandomFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for i := 0; i < 80; i++ {
		f := randPositive(rng, 1+rng.Intn(3), "h", 0)
		q := NewEFOPlus("Q", []Term{V("h")}, f)
		if err := q.Validate(); err != nil {
			t.Fatalf("instance %d invalid: %v", i, err)
		}
		u, err := q.ToUCQ()
		if err != nil {
			t.Fatalf("instance %d: %v\n%s", i, err, q)
		}
		db := randDB(rng, 3, 2+rng.Intn(6), 1+rng.Intn(3))
		a, err := q.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		b, err := u.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("instance %d: ∃FO+ %v vs UCQ %v\nformula: %s", i, a, b, q)
		}
	}
}
