package query

import "sort"

// Relations returns the extensional relation names q reads, sorted and
// deduplicated, together with whether that list is exhaustive. For CQ, UCQ
// and datalog queries it is: their evaluation only ever scans the relations
// their bodies mention (datalog IDB predicates are excluded — they are
// derived, not read). FO-language queries evaluate under active-domain
// semantics, where quantifiers range over values drawn from every relation
// of the database, so their answers may depend on relations the formula
// never names: for them exhaustive is false and callers tracking data
// dependencies must treat the whole database as read. The serving layer
// uses this to key cached results by the content a request actually
// depends on, so deltas to unrelated relations leave them valid.
func Relations(q Query) (names []string, exhaustive bool) {
	set := make(map[string]struct{})
	exhaustive = true
	switch g := q.(type) {
	case *CQ:
		atomsRelations(g.Body, set)
	case *UCQ:
		for _, d := range g.Disjuncts {
			atomsRelations(d.Body, set)
		}
	case *FOQuery:
		formulaRelations(g.Formula, set)
		exhaustive = false
	case *Datalog:
		idb := g.idbPreds()
		for _, r := range g.Rules {
			atomsRelations(r.Body, set)
		}
		for pred := range idb {
			delete(set, pred)
		}
	default:
		// An unknown Query implementation could read anything.
		exhaustive = false
	}
	names = make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, exhaustive
}

func atomsRelations(atoms []Atom, set map[string]struct{}) {
	for _, a := range atoms {
		if ra, ok := a.(*RelAtom); ok {
			set[ra.Pred] = struct{}{}
		}
	}
}

func formulaRelations(f Formula, set map[string]struct{}) {
	switch g := f.(type) {
	case *FAtom:
		atomsRelations([]Atom{g.A}, set)
	case *FAnd:
		for _, s := range g.Subs {
			formulaRelations(s, set)
		}
	case *FOr:
		for _, s := range g.Subs {
			formulaRelations(s, set)
		}
	case *FNot:
		formulaRelations(g.Sub, set)
	case *FExists:
		formulaRelations(g.Sub, set)
	case *FForall:
		formulaRelations(g.Sub, set)
	}
}
