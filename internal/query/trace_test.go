package query

import (
	"sort"
	"testing"

	"repro/internal/relation"
)

func refSet(refs []string) map[string]struct{} {
	out := make(map[string]struct{}, len(refs))
	for _, r := range refs {
		out[r] = struct{}{}
	}
	return out
}

// TraceEval must agree with Eval on the answer and record, per output
// tuple, exactly the source tuples of its derivations — the union when a
// tuple has several.
func TestTraceEvalRecordsReads(t *testing.T) {
	db := testDB()
	// Q(a, c) :- R(a, b), R(b, c): join, each output a single derivation.
	q := NewCQ("Q", []Term{V("a"), V("c")},
		Rel("R", V("a"), V("b")), Rel("R", V("b"), V("c")))
	out, reads, err := TraceEval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(mustEval(t, q, db)) {
		t.Fatalf("traced answer %v differs from Eval", out)
	}
	got := refSet(reads[relation.Ints(1, 3).Key()])
	want := refSet([]string{
		SourceRef("R", relation.Ints(1, 2).Key()),
		SourceRef("R", relation.Ints(2, 3).Key()),
	})
	if len(got) != len(want) {
		t.Fatalf("reads for (1,3): %v", reads[relation.Ints(1, 3).Key()])
	}
	for r := range want {
		if _, ok := got[r]; !ok {
			t.Fatalf("reads for (1,3) missing %q; have %v", r, reads)
		}
	}

	// P(b) :- R(a, b) projects away a: output (2) has one derivation,
	// output tuples collapsing several bindings union their reads.
	p := NewCQ("P", []Term{V("b")}, Rel("R", V("a"), V("b")))
	_, preads, err := TraceEval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(preads[relation.Ints(2).Key()]) != 1 {
		t.Fatalf("reads for (2): %v", preads)
	}

	// A UCQ unions reads across disjuncts.
	u := NewUCQ("U",
		NewCQ("U", []Term{V("b")}, Rel("S", V("b"))),
		NewCQ("U", []Term{V("b")}, Rel("R", CI(1), V("b"))),
	)
	uout, ureads, err := TraceEval(u, db)
	if err != nil {
		t.Fatal(err)
	}
	wantTuples(t, uout, relation.Ints(2), relation.Ints(4))
	if len(ureads[relation.Ints(2).Key()]) != 2 {
		t.Fatalf("UCQ reads for (2): %v", ureads)
	}
}

// TraceDelta must find exactly the outputs with a derivation through an
// added tuple, including joins where the added tuple sits at either
// occurrence.
func TestTraceDeltaSemiNaive(t *testing.T) {
	db := testDB()
	q := NewCQ("Q", []Term{V("a"), V("c")},
		Rel("R", V("a"), V("b")), Rel("R", V("b"), V("c")))
	// Add (4,5) to R: new outputs (3,5) [added at 2nd occurrence] and,
	// jointly with the existing (3,4), nothing else; (4,?) needs R(5,·).
	res, err := db.ApplyDelta(relation.Delta{Upserts: []relation.RelationDelta{
		{Name: "R", Tuples: [][]any{{4, 5}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	tuples, reads, err := TraceDelta(q, res.DB, map[string][]relation.Tuple{
		"R": {relation.Ints(4, 5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(tuples))
	for i, tup := range tuples {
		keys[i] = tup.Key()
	}
	sort.Strings(keys)
	if len(tuples) != 1 || keys[0] != relation.Ints(3, 5).Key() {
		t.Fatalf("delta outputs %v, want [(3,5)]", tuples)
	}
	got := refSet(reads[relation.Ints(3, 5).Key()])
	if _, ok := got[SourceRef("R", relation.Ints(4, 5).Key())]; !ok {
		t.Fatalf("delta reads missing the added tuple: %v", reads)
	}

	// An added tuple failing the query's constraints derives nothing.
	cq := NewCQ("C", []Term{V("b")}, Rel("S", V("b")), Cmp(V("b"), OpLt, CI(0)))
	none, _, err := TraceDelta(cq, res.DB, map[string][]relation.Tuple{"S": {relation.Ints(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("constraint-failing delta derived %v", none)
	}
}

// TraceTuple must decide membership with the head pre-bound and return the
// union of all derivations' reads, and reject tuples with no derivation.
func TestTraceTupleHeadBound(t *testing.T) {
	db := testDB()
	q := NewCQ("Q", []Term{V("a"), V("c")},
		Rel("R", V("a"), V("b")), Rel("R", V("b"), V("c")))
	ok, reads, err := TraceTuple(q, db, relation.Ints(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(reads) != 2 {
		t.Fatalf("TraceTuple(2,4): ok=%v reads=%v", ok, reads)
	}
	ok, _, err = TraceTuple(q, db, relation.Ints(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("TraceTuple claims underivable tuple is derivable")
	}
	// Repeated head variables must be respected by the pre-binding.
	diag := NewCQ("D", []Term{V("x"), V("x")}, Rel("R", V("x"), V("y")))
	ok, _, err = TraceTuple(diag, db, relation.Ints(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("repeated head variable bound inconsistently")
	}
}

// Tracing is defined for the positive fragment only.
func TestTraceableFragment(t *testing.T) {
	cq := NewCQ("Q", []Term{V("b")}, Rel("S", V("b")))
	if !Traceable(cq) || !Traceable(NewUCQ("U", cq)) {
		t.Fatal("CQ/UCQ must be traceable")
	}
	var fo Query = NewFO("F", []Term{V("x")}, Atomf(Rel("S", V("x"))))
	if Traceable(fo) {
		t.Fatal("FO must not be traceable")
	}
	if _, _, err := TraceEval(fo, testDB()); err == nil {
		t.Fatal("TraceEval on FO must error")
	}
}
