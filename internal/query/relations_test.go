package query

import (
	"reflect"
	"testing"
)

func TestRelationsCQAndUCQ(t *testing.T) {
	cq := NewCQ("Q", []Term{V("x")}, Rel("b", V("x")), Rel("a", V("x"), V("y")), Rel("b", V("y")))
	names, ex := Relations(cq)
	if !ex || !reflect.DeepEqual(names, []string{"a", "b"}) {
		t.Fatalf("CQ: names=%v exhaustive=%v", names, ex)
	}
	ucq := NewUCQ("Q",
		NewCQ("Q1", []Term{V("x")}, Rel("a", V("x"), V("y"))),
		NewCQ("Q2", []Term{V("x")}, Rel("c", V("x"))))
	names, ex = Relations(ucq)
	if !ex || !reflect.DeepEqual(names, []string{"a", "c"}) {
		t.Fatalf("UCQ: names=%v exhaustive=%v", names, ex)
	}
}

// FO queries quantify over the whole active domain, so the mentioned
// relations are not the whole dependency story.
func TestRelationsFONotExhaustive(t *testing.T) {
	fo := NewFO("Q", []Term{V("x")},
		Exists([]string{"y"}, And(Atomf(Rel("a", V("x"), V("y"))), Not(Atomf(Rel("b", V("y")))))))
	names, ex := Relations(fo)
	if ex {
		t.Fatal("FO query reported an exhaustive dependency list")
	}
	if !reflect.DeepEqual(names, []string{"a", "b"}) {
		t.Fatalf("FO names=%v", names)
	}
}

// Datalog IDB predicates are derived, not read: only EDB relations are
// dependencies.
func TestRelationsDatalogExcludesIDB(t *testing.T) {
	prog := NewDatalog("reach",
		NewRule(Rel("reach", V("x"), V("y")), Rel("edge", V("x"), V("y"))),
		NewRule(Rel("reach", V("x"), V("z")), Rel("reach", V("x"), V("y")), Rel("edge", V("y"), V("z"))))
	names, ex := Relations(prog)
	if !ex || !reflect.DeepEqual(names, []string{"edge"}) {
		t.Fatalf("datalog: names=%v exhaustive=%v", names, ex)
	}
}
