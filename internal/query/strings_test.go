package query

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestRenderings(t *testing.T) {
	cq := NewCQ("Q", []Term{V("x"), CI(3)},
		Rel("R", V("x"), CS("a")), Cmp(V("x"), OpLe, CI(9)))
	if got := cq.String(); got != `Q(x, 3) :- R(x, "a"), x <= 9.` {
		t.Fatalf("CQ rendering = %q", got)
	}
	u := NewUCQ("Q",
		NewCQ("Q1", []Term{V("x")}, Rel("S", V("x"))),
		NewCQ("Q2", []Term{V("x")}, Rel("T", V("x"))))
	if got := u.String(); !strings.Contains(got, "Q1(x) :- S(x).") || !strings.Contains(got, "Q2(x) :- T(x).") {
		t.Fatalf("UCQ rendering = %q", got)
	}
	fo := NewFO("Q", []Term{V("x")},
		And(Atomf(Rel("S", V("x"))),
			Not(Exists([]string{"y"}, Atomf(Rel("R", V("x"), V("y")))))))
	want := "Q(x) := (S(x)) & (!(exists y (R(x, y))))"
	if got := fo.String(); got != want {
		t.Fatalf("FO rendering = %q, want %q", got, want)
	}
	forall := Forall([]string{"z"}, Or(Atomf(Rel("S", V("z"))), Atomf(Cmp(V("z"), OpNe, CI(0)))))
	if got := forall.String(); got != "forall z ((S(z)) | (z != 0))" {
		t.Fatalf("forall rendering = %q", got)
	}
	d := Dist("citydist", func(a, b relation.Value) float64 { return 0 }, V("w"), CS("nyc"), 15)
	if got := d.String(); got != `citydist(w, "nyc") <= 15` {
		t.Fatalf("dist rendering = %q", got)
	}
}

func TestLanguageStrings(t *testing.T) {
	cases := map[Language]string{
		LangSP:        "SP",
		LangCQ:        "CQ",
		LangUCQ:       "UCQ",
		LangEFOPlus:   "∃FO+",
		LangDatalogNR: "DATALOGnr",
		LangFO:        "FO",
		LangDatalog:   "DATALOG",
	}
	for l, want := range cases {
		if l.String() != want {
			t.Errorf("Language(%d).String() = %q, want %q", int(l), l.String(), want)
		}
	}
	ops := map[CmpOp]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("CmpOp %v rendering wrong", op)
		}
	}
}

func TestDistAtomEvaluation(t *testing.T) {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("R", "v"),
		relation.Ints(1), relation.Ints(5), relation.Ints(9)))
	abs := func(a, b relation.Value) float64 {
		d := a.Float64() - b.Float64()
		if d < 0 {
			d = -d
		}
		return d
	}
	q := NewCQ("Q", []Term{V("v")},
		Rel("R", V("v")),
		Dist("abs", abs, V("v"), CI(5), 4))
	out := mustEval(t, q, db)
	wantTuples(t, out, relation.Ints(1), relation.Ints(5), relation.Ints(9))
	tight := NewCQ("Q", []Term{V("v")},
		Rel("R", V("v")),
		Dist("abs", abs, V("v"), CI(5), 3))
	wantTuples(t, mustEval(t, tight, db), relation.Ints(5))
}

func TestDistAtomInFOFormula(t *testing.T) {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("R", "v"),
		relation.Ints(1), relation.Ints(5)))
	abs := func(a, b relation.Value) float64 {
		d := a.Float64() - b.Float64()
		if d < 0 {
			d = -d
		}
		return d
	}
	q := NewFO("Q", []Term{V("v")},
		And(Atomf(Rel("R", V("v"))), Atomf(Dist("abs", abs, V("v"), CI(0), 2))))
	wantTuples(t, mustEval(t, q, db), relation.Ints(1))
}

func TestTermString(t *testing.T) {
	if V("x").String() != "x" || CI(5).String() != "5" || CS("a").String() != `"a"` {
		t.Fatal("term renderings wrong")
	}
}

func TestRuleString(t *testing.T) {
	r := NewRule(Rel("P", V("x")), Rel("E", V("x"), V("y")), Cmp(V("y"), OpGt, CI(0)))
	if got := r.String(); got != "P(x) :- E(x, y), y > 0." {
		t.Fatalf("rule rendering = %q", got)
	}
}

func TestEFOPlusActiveDomainIncludesHeadConstants(t *testing.T) {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("S", "v"), relation.Ints(1)))
	q := NewEFOPlus("Q", []Term{CI(42), V("x")}, Atomf(Rel("S", V("x"))))
	adom := q.ActiveDomain(db)
	found := false
	for _, v := range adom {
		if v.Equal(relation.Int(42)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("head constant missing from adom: %v", adom)
	}
	out := mustEval(t, q, db)
	wantTuples(t, out, relation.Ints(42, 1))
}
