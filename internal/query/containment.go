package query

import (
	"fmt"

	"repro/internal/relation"
)

// This file implements the classical homomorphism-based containment test
// for conjunctive queries (Chandra–Merlin), together with equivalence and
// minimization. The paper leans on CQ membership being NP-complete
// (combined complexity) throughout Section 4; containment is the other
// face of that coin and is used by the test suite to check, statically,
// that gap-0 relaxations are equivalent to the original query and that
// relaxation only widens CQs.
//
// The test applies to CQs whose bodies contain only relation atoms
// (built-in predicates make containment ΠP2-hard, so ContainedIn rejects
// them with an error rather than answering incorrectly).

// frozenPrefix marks canonical-database constants; it cannot collide with
// user strings that matter because the canonical database is private to
// the test.
const frozenPrefix = "\x00frozen:"

// freeze maps a term to its canonical-database constant.
func freeze(t Term) relation.Value {
	if t.IsVar {
		return relation.Str(frozenPrefix + t.Var)
	}
	return t.Const
}

// canonicalDB builds the frozen (canonical) database of a CQ body: each
// variable becomes a distinct fresh constant, each atom a tuple.
func canonicalDB(q *CQ) (*relation.Database, error) {
	db := relation.NewDatabase()
	for _, a := range q.Body {
		ra, ok := a.(*RelAtom)
		if !ok {
			return nil, fmt.Errorf("query: containment is only decided for CQs without built-in predicates (found %v)", a)
		}
		rel := db.Relation(ra.Pred)
		if rel == nil {
			rel = relation.NewRelation(relation.AutoSchema(ra.Pred, len(ra.Args)))
			db.Add(rel)
		}
		if rel.Arity() != len(ra.Args) {
			return nil, fmt.Errorf("query: predicate %s used with arities %d and %d", ra.Pred, rel.Arity(), len(ra.Args))
		}
		t := make(relation.Tuple, len(ra.Args))
		for i, arg := range ra.Args {
			t[i] = freeze(arg)
		}
		if err := rel.Insert(t); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// frozenHead returns the canonical head tuple of a CQ.
func frozenHead(q *CQ) relation.Tuple {
	t := make(relation.Tuple, len(q.Head))
	for i, term := range q.Head {
		t[i] = freeze(term)
	}
	return t
}

// ContainedIn decides q ⊆ q2 (answer inclusion over every database) by the
// homomorphism theorem: q ⊆ q2 iff q2 retrieves q's frozen head from q's
// canonical database. Both queries must be relation-atom-only CQs of the
// same arity.
func (q *CQ) ContainedIn(q2 *CQ) (bool, error) {
	if q.Arity() != q2.Arity() {
		return false, fmt.Errorf("query: containment across arities %d and %d", q.Arity(), q2.Arity())
	}
	if err := q.Validate(); err != nil {
		return false, err
	}
	if err := q2.Validate(); err != nil {
		return false, err
	}
	db, err := canonicalDB(q)
	if err != nil {
		return false, err
	}
	// q2 may mention predicates q does not; they are empty in the canonical
	// database.
	for _, a := range q2.Body {
		ra, ok := a.(*RelAtom)
		if !ok {
			return false, fmt.Errorf("query: containment is only decided for CQs without built-in predicates (found %v)", a)
		}
		if db.Relation(ra.Pred) == nil {
			db.Add(relation.NewRelation(relation.AutoSchema(ra.Pred, len(ra.Args))))
		}
	}
	ans, err := q2.Eval(db)
	if err != nil {
		return false, err
	}
	return ans.Contains(frozenHead(q)), nil
}

// EquivalentTo decides q ≡ q2 by mutual containment.
func (q *CQ) EquivalentTo(q2 *CQ) (bool, error) {
	a, err := q.ContainedIn(q2)
	if err != nil || !a {
		return false, err
	}
	return q2.ContainedIn(q)
}

// Minimize returns an equivalent CQ with a minimal body (its core): it
// repeatedly drops relation atoms whose removal preserves equivalence.
// The result is a fresh query; the receiver is unchanged.
func (q *CQ) Minimize() (*CQ, error) {
	cur := q.cloneCQ()
	for {
		removed := false
		for i := range cur.Body {
			if len(cur.Body) == 1 {
				break
			}
			cand := &CQ{Name: cur.Name, Head: cur.Head,
				Body: append(append([]Atom(nil), cur.Body[:i]...), cur.Body[i+1:]...)}
			if cand.Validate() != nil {
				continue // dropping the atom unbinds a head variable
			}
			// cand has fewer atoms, so cand ⊇ cur always; equivalence needs
			// cand ⊆ cur.
			ok, err := cand.ContainedIn(cur)
			if err != nil {
				return nil, err
			}
			if ok {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur, nil
		}
	}
}

// HomomorphicallyCovers reports whether some homomorphism maps q2's body
// into q's canonical database ignoring heads — the Boolean-query
// containment check used by tests for constraint queries.
func (q *CQ) HomomorphicallyCovers(q2 *CQ) (bool, error) {
	db, err := canonicalDB(q)
	if err != nil {
		return false, err
	}
	for _, a := range q2.Body {
		ra, ok := a.(*RelAtom)
		if !ok {
			return false, fmt.Errorf("query: homomorphism check requires relation atoms only")
		}
		if db.Relation(ra.Pred) == nil {
			db.Add(relation.NewRelation(relation.AutoSchema(ra.Pred, len(ra.Args))))
		}
	}
	boolq := &CQ{Name: "hom", Body: q2.Body}
	ans, err := boolq.Eval(db)
	if err != nil {
		return false, err
	}
	return ans.Len() > 0, nil
}
