package query

import (
	"testing"

	"repro/internal/relation"
)

func TestEFOPlusDisjunction(t *testing.T) {
	// Q(x) := S(x) | exists b (R(x, b) & b = 2)
	q := NewEFOPlus("Q", []Term{V("x")},
		Or(Atomf(Rel("S", V("x"))),
			Exists([]string{"b"}, And(Atomf(Rel("R", V("x"), V("b"))), Atomf(Eq(V("b"), CI(2)))))))
	wantTuples(t, mustEval(t, q, testDB()), relation.Ints(1), relation.Ints(2), relation.Ints(4))
	if q.Language() != LangEFOPlus {
		t.Fatalf("language = %v", q.Language())
	}
}

func TestEFOPlusRejectsNegation(t *testing.T) {
	q := NewEFOPlus("Q", []Term{V("x")}, And(Atomf(Rel("S", V("x"))), Not(Atomf(Rel("S", V("x"))))))
	if err := q.Validate(); err == nil {
		t.Fatal("∃FO+ must reject negation")
	}
	q2 := NewEFOPlus("Q", []Term{V("x")},
		And(Atomf(Rel("S", V("x"))), Forall([]string{"y"}, Atomf(Rel("S", V("y"))))))
	if err := q2.Validate(); err == nil {
		t.Fatal("∃FO+ must reject universal quantification")
	}
}

func TestEFOPlusMatchesUCQ(t *testing.T) {
	// The ∃FO+ query (S(x) ∨ ∃b R(x,b)) equals the UCQ with those disjuncts.
	db := testDB()
	efo := NewEFOPlus("Q", []Term{V("x")},
		Or(Atomf(Rel("S", V("x"))), Exists([]string{"b"}, Atomf(Rel("R", V("x"), V("b"))))))
	ucq := NewUCQ("Q",
		NewCQ("Q1", []Term{V("x")}, Rel("S", V("x"))),
		NewCQ("Q2", []Term{V("x")}, Rel("R", V("x"), V("b"))))
	if !mustEval(t, efo, db).Equal(mustEval(t, ucq, db)) {
		t.Fatal("∃FO+ and equivalent UCQ disagree")
	}
}

func TestFONegation(t *testing.T) {
	// Q(x) := (exists b R(x, b)) & !S(x)  — first components not in S.
	q := NewFO("Q", []Term{V("x")},
		And(Exists([]string{"b"}, Atomf(Rel("R", V("x"), V("b")))),
			Not(Atomf(Rel("S", V("x"))))))
	wantTuples(t, mustEval(t, q, testDB()), relation.Ints(1), relation.Ints(3))
}

func TestFOUniversal(t *testing.T) {
	// Q(x) := S(x) & forall a, b (R(a, b) -> x <= b)
	// In testDB the R b-column is {2,3,4}; min is 2 so x ∈ S with x ≤ 2: {2}.
	q := NewFO("Q", []Term{V("x")},
		And(Atomf(Rel("S", V("x"))),
			Forall([]string{"a", "b"},
				Implies(Atomf(Rel("R", V("a"), V("b"))), Atomf(Cmp(V("x"), OpLe, V("b")))))))
	wantTuples(t, mustEval(t, q, testDB()), relation.Ints(2))
}

func TestFODoubleNegationMatchesPositive(t *testing.T) {
	db := testDB()
	pos := NewFO("Q", []Term{V("x")}, Atomf(Rel("S", V("x"))))
	dneg := NewFO("Q", []Term{V("x")},
		And(Atomf(Rel("S", V("x"))), Not(Not(Atomf(Rel("S", V("x")))))))
	if !mustEval(t, pos, db).Equal(mustEval(t, dneg, db)) {
		t.Fatal("double negation changed the answer")
	}
}

func TestFOQuantifierShadowing(t *testing.T) {
	// Q(b) := S(b) & exists b (R(1, b))  — inner b shadows the head variable.
	q := NewFO("Q", []Term{V("b")},
		And(Atomf(Rel("S", V("b"))), Exists([]string{"b"}, Atomf(Rel("R", CI(1), V("b"))))))
	wantTuples(t, mustEval(t, q, testDB()), relation.Ints(2), relation.Ints(4))
}

func TestFOActiveDomainIncludesQueryConstants(t *testing.T) {
	// Q(x) := x = 99: 99 only exists as a query constant; active-domain
	// semantics must still return it.
	q := NewFO("Q", []Term{V("x")}, Atomf(Eq(V("x"), CI(99))))
	wantTuples(t, mustEval(t, q, testDB()), relation.Ints(99))
}

func TestFOHeadVarNotFree(t *testing.T) {
	q := NewFO("Q", []Term{V("z")}, Atomf(Rel("S", V("x"))))
	if err := q.Validate(); err == nil {
		t.Fatal("head variable not free in formula should fail validation")
	}
}

func TestFOBooleanQuery(t *testing.T) {
	// Boolean (0-ary) query: Q() := exists x (S(x) & x > 3).
	q := NewFO("Q", nil, Exists([]string{"x"},
		And(Atomf(Rel("S", V("x"))), Atomf(Cmp(V("x"), OpGt, CI(3))))))
	out := mustEval(t, q, testDB())
	if out.Len() != 1 {
		t.Fatalf("boolean query should hold: %v", out)
	}
	qNo := NewFO("Q", nil, Exists([]string{"x"},
		And(Atomf(Rel("S", V("x"))), Atomf(Cmp(V("x"), OpGt, CI(10))))))
	out = mustEval(t, qNo, testDB())
	if out.Len() != 0 {
		t.Fatalf("boolean query should be empty: %v", out)
	}
}

func TestFOOrDeduplicates(t *testing.T) {
	// x appears in both branches; answers must be a set.
	q := NewFO("Q", []Term{V("x")},
		Or(Atomf(Rel("S", V("x"))), Atomf(Rel("S", V("x")))))
	wantTuples(t, mustEval(t, q, testDB()), relation.Ints(2), relation.Ints(4))
}

func TestFOOrUnboundBranchVariables(t *testing.T) {
	// Q(x, y) := S(x) | S(y): active-domain semantics pairs the free branch
	// variable with every active-domain value.
	q := NewFO("Q", []Term{V("x"), V("y")}, Or(Atomf(Rel("S", V("x"))), Atomf(Rel("S", V("y")))))
	out := mustEval(t, q, testDB())
	adomSize := len(q.ActiveDomain(testDB()))
	// |S| * |adom| per branch minus the overlap |S|*|S|.
	want := 2*adomSize + 2*adomSize - 4
	if out.Len() != want {
		t.Fatalf("got %d answers, want %d", out.Len(), want)
	}
}

func TestFOImplicationEncoding(t *testing.T) {
	// forall x (S(x) -> x >= 2) is true in testDB.
	q := NewFO("Q", nil, Forall([]string{"x"},
		Implies(Atomf(Rel("S", V("x"))), Atomf(Cmp(V("x"), OpGe, CI(2))))))
	if mustEval(t, q, testDB()).Len() != 1 {
		t.Fatal("implication should hold for every S value")
	}
	q2 := NewFO("Q", nil, Forall([]string{"x"},
		Implies(Atomf(Rel("S", V("x"))), Atomf(Cmp(V("x"), OpGe, CI(3))))))
	if mustEval(t, q2, testDB()).Len() != 0 {
		t.Fatal("implication should fail for S value 2")
	}
}

func TestFOCloneIsDeep(t *testing.T) {
	q := NewFO("Q", []Term{V("x")}, And(Atomf(Rel("S", V("x"))), Not(Atomf(Eq(V("x"), CI(2))))))
	c := q.Clone().(*FOQuery)
	inner := c.Formula.(*FAnd).Subs[1].(*FNot).Sub.(*FAtom).A.(*CmpAtom)
	inner.Right = CI(4)
	orig := q.Formula.(*FAnd).Subs[1].(*FNot).Sub.(*FAtom).A.(*CmpAtom)
	if orig.Right.Const.Int64() != 2 {
		t.Fatal("clone shares formula nodes with original")
	}
}

func TestEFOPlusAgreesWithFOOnPositive(t *testing.T) {
	// The same positive formula evaluated by both query kinds must agree
	// (∃FO+ ⊆ FO).
	db := testDB()
	formula := Or(
		Exists([]string{"b"}, And(Atomf(Rel("R", V("x"), V("b"))), Atomf(Rel("S", V("b"))))),
		Atomf(Rel("S", V("x"))))
	efo := NewEFOPlus("Q", []Term{V("x")}, formula)
	fo := NewFO("Q", []Term{V("x")}, formula.cloneF())
	if !mustEval(t, efo, db).Equal(mustEval(t, fo, db)) {
		t.Fatal("∃FO+ and FO evaluation disagree on a positive formula")
	}
}
