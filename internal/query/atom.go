package query

import (
	"fmt"
	"strings"
)

// Atom is one conjunct of a rule body or quantifier-free formula leaf:
// a relation atom R(t1, ..., tn), a built-in comparison t1 op t2, or a
// distance constraint dist(t1, t2) ≤ d (Section 7).
type Atom interface {
	// addVars inserts the atom's variables into set.
	addVars(set map[string]struct{})
	// cloneAtom returns a deep copy.
	cloneAtom() Atom
	String() string
}

// RelAtom is a relation atom R(args...).
type RelAtom struct {
	Pred string
	Args []Term
}

// Rel builds a relation atom.
func Rel(pred string, args ...Term) *RelAtom { return &RelAtom{Pred: pred, Args: args} }

func (a *RelAtom) addVars(set map[string]struct{}) {
	for _, t := range a.Args {
		if t.IsVar {
			set[t.Var] = struct{}{}
		}
	}
}

func (a *RelAtom) cloneAtom() Atom {
	return &RelAtom{Pred: a.Pred, Args: append([]Term(nil), a.Args...)}
}

// String renders the atom.
func (a *RelAtom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// CmpAtom is a built-in comparison left op right.
type CmpAtom struct {
	Op          CmpOp
	Left, Right Term
}

// Cmp builds a comparison atom.
func Cmp(left Term, op CmpOp, right Term) *CmpAtom {
	return &CmpAtom{Op: op, Left: left, Right: right}
}

// Eq builds an equality atom.
func Eq(left, right Term) *CmpAtom { return Cmp(left, OpEq, right) }

func (a *CmpAtom) addVars(set map[string]struct{}) {
	if a.Left.IsVar {
		set[a.Left.Var] = struct{}{}
	}
	if a.Right.IsVar {
		set[a.Right.Var] = struct{}{}
	}
}

func (a *CmpAtom) cloneAtom() Atom { c := *a; return &c }

// holds evaluates the comparison under env; ok is false if not ground.
func (a *CmpAtom) holds(env Binding) (result, ok bool) {
	l, lok := a.Left.resolve(env)
	r, rok := a.Right.resolve(env)
	if !lok || !rok {
		return false, false
	}
	return a.Op.Holds(l, r), true
}

// String renders the atom.
func (a *CmpAtom) String() string {
	return fmt.Sprintf("%s %s %s", a.Left, a.Op, a.Right)
}

// DistAtom is a distance constraint dist(Left, Right) ≤ Bound, where Fn is
// the attribute's distance function from Γ. Relaxed queries QΓ of Section 7
// carry these atoms; gap(QΓ) sums their bounds.
type DistAtom struct {
	FnName      string
	Fn          DistanceFunc
	Left, Right Term
	Bound       float64
}

// Dist builds a distance atom.
func Dist(fnName string, fn DistanceFunc, left, right Term, bound float64) *DistAtom {
	return &DistAtom{FnName: fnName, Fn: fn, Left: left, Right: right, Bound: bound}
}

func (a *DistAtom) addVars(set map[string]struct{}) {
	if a.Left.IsVar {
		set[a.Left.Var] = struct{}{}
	}
	if a.Right.IsVar {
		set[a.Right.Var] = struct{}{}
	}
}

func (a *DistAtom) cloneAtom() Atom { c := *a; return &c }

// holds evaluates the constraint under env; ok is false if not ground.
func (a *DistAtom) holds(env Binding) (result, ok bool) {
	l, lok := a.Left.resolve(env)
	r, rok := a.Right.resolve(env)
	if !lok || !rok {
		return false, false
	}
	return a.Fn(l, r) <= a.Bound, true
}

// String renders the atom.
func (a *DistAtom) String() string {
	return fmt.Sprintf("%s(%s, %s) <= %g", a.FnName, a.Left, a.Right, a.Bound)
}

// groundAtomHolds evaluates a constraint atom (CmpAtom or DistAtom) under
// env. It reports unsat for relation atoms, which must be handled by the
// join machinery instead.
func groundAtomHolds(a Atom, env Binding) (result, ok bool) {
	switch at := a.(type) {
	case *CmpAtom:
		return at.holds(env)
	case *DistAtom:
		return at.holds(env)
	default:
		return false, false
	}
}

// atomsVars collects all variables of a list of atoms.
func atomsVars(atoms []Atom) map[string]struct{} {
	set := make(map[string]struct{})
	for _, a := range atoms {
		a.addVars(set)
	}
	return set
}

// cloneAtoms deep-copies a body.
func cloneAtoms(atoms []Atom) []Atom {
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		out[i] = a.cloneAtom()
	}
	return out
}

// atomsString renders a body.
func atomsString(atoms []Atom) string {
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}
