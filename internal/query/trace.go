package query

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Read provenance for the positive fragment (CQ/UCQ): which relation
// tuples each output tuple was derived from. The traced evaluator mirrors
// bodyPlan.run but records, per derivation, the source tuple matched at
// every relation atom — the lineage that lets a delta consumer decide
// whether a touched tuple can possibly affect an output without
// re-evaluating the query. Under set semantics an output tuple may have
// several derivations; all traces report the union of their reads.

// SourceRef identifies one relation tuple a derivation read: the relation
// name and the tuple's canonical key, joined by a NUL byte (which cannot
// occur in either part).
func SourceRef(rel, tupleKey string) string { return rel + "\x00" + tupleKey }

// SplitSourceRef is the inverse of SourceRef.
func SplitSourceRef(ref string) (rel, tupleKey string) {
	rel, tupleKey, _ = strings.Cut(ref, "\x00")
	return rel, tupleKey
}

// Traceable reports whether read provenance can be traced for q. Tracing
// covers the positive existential fragment the paper's package queries
// live in (SP/CQ/UCQ); negation and recursion would need a different
// lineage model and report false.
func Traceable(q Query) bool {
	switch q.(type) {
	case *CQ, *UCQ:
		return true
	}
	return false
}

// TraceEval evaluates q over db like q.Eval, additionally recording for
// every output tuple the SourceRefs of all its derivations. reads is keyed
// by the output Tuple.Key(). Only Traceable queries are supported.
func TraceEval(q Query, db *relation.Database) (*relation.Relation, map[string][]string, error) {
	out := relation.NewRelation(relation.AutoSchema(q.OutName(), q.Arity()))
	acc := newReadAcc()
	for _, cq := range disjuncts(q) {
		if cq == nil {
			return nil, nil, fmt.Errorf("query: cannot trace %s query %s", q.Language(), q.OutName())
		}
		if err := traceCQ(cq, dbResolver(db), Binding{}, out, acc); err != nil {
			return nil, nil, err
		}
	}
	out.Sort()
	return out, acc.flatten(), nil
}

// TraceDelta performs one semi-naive delta round: it returns every output
// tuple derivable over db using at least one of the added tuples, with the
// reads of those derivations. added maps relation names to tuples that are
// already present in db (the post-delta database). The result over-derives
// by design — tuples already derivable without the additions may appear
// when they also have a derivation through one — which is harmless under
// set semantics; callers dedup against the prior answer.
func TraceDelta(q Query, db *relation.Database, added map[string][]relation.Tuple) ([]relation.Tuple, map[string][]string, error) {
	restricted := make(map[string]*relation.Relation, len(added))
	for name, tuples := range added {
		src := db.Relation(name)
		if src == nil {
			return nil, nil, fmt.Errorf("query: delta trace: unknown relation %q", name)
		}
		r := relation.NewRelation(src.Schema())
		for _, t := range tuples {
			if err := r.Insert(t); err != nil {
				return nil, nil, err
			}
		}
		restricted[name] = r
	}
	out := relation.NewRelation(relation.AutoSchema(q.OutName(), q.Arity()))
	acc := newReadAcc()
	for _, cq := range disjuncts(q) {
		if cq == nil {
			return nil, nil, fmt.Errorf("query: cannot trace %s query %s", q.Language(), q.OutName())
		}
		// One pass per occurrence of a mutated relation, with that single
		// occurrence restricted to the added tuples: any derivation using
		// at least one added tuple uses one at some occurrence, so the
		// union over passes is complete.
		occ := -1
		for _, a := range cq.Body {
			ra, ok := a.(*RelAtom)
			if !ok {
				continue
			}
			occ++
			delta, ok := restricted[ra.Pred]
			if !ok {
				continue
			}
			resolve := occurrenceResolver(db, occ, delta)
			if err := traceCQ(cq, resolve, Binding{}, out, acc); err != nil {
				return nil, nil, err
			}
		}
	}
	out.Sort()
	return out.Tuples(), acc.flatten(), nil
}

// TraceTuple reports whether t ∈ q(db), evaluating the body with the head
// bound to t (so the scan is filtered instead of enumerating the full
// answer), and returns the union of the reads of all of t's derivations.
func TraceTuple(q Query, db *relation.Database, t relation.Tuple) (bool, []string, error) {
	if len(t) != q.Arity() {
		return false, nil, fmt.Errorf("query: trace tuple arity %d against %s/%d", len(t), q.OutName(), q.Arity())
	}
	acc := newReadAcc()
	found := false
	for _, cq := range disjuncts(q) {
		if cq == nil {
			return false, nil, fmt.Errorf("query: cannot trace %s query %s", q.Language(), q.OutName())
		}
		env := Binding{}
		if !bindHead(cq.Head, t, env) {
			continue // head constants disagree with t in this disjunct
		}
		derived := false
		err := traceBody("CQ "+cq.Name, cq.Body, dbResolver(db), env, func(_ Binding, refs []string) bool {
			derived = true
			acc.add(t.Key(), refs)
			return true // keep going: we want every derivation's reads
		})
		if err != nil {
			return false, nil, err
		}
		found = found || derived
	}
	if !found {
		return false, nil, nil
	}
	return true, acc.flatten()[t.Key()], nil
}

// disjuncts views a traceable query as a list of CQs; a nil entry flags an
// untraceable query.
func disjuncts(q Query) []*CQ {
	switch qq := q.(type) {
	case *CQ:
		return []*CQ{qq}
	case *UCQ:
		return qq.Disjuncts
	}
	return []*CQ{nil}
}

// bindHead pre-binds a CQ head to a concrete output tuple. It reports
// false when a head constant or a repeated head variable disagrees with t.
func bindHead(head []Term, t relation.Tuple, env Binding) bool {
	for i, term := range head {
		if !term.IsVar {
			if !term.Const.Equal(t[i]) {
				return false
			}
			continue
		}
		if cur, ok := env[term.Var]; ok {
			if !cur.Equal(t[i]) {
				return false
			}
			continue
		}
		env[term.Var] = t[i]
	}
	return true
}

// occurrenceResolver resolves relation-atom occurrence occ to delta and
// every other occurrence against db.
func occurrenceResolver(db *relation.Database, occ int, delta *relation.Relation) relResolver {
	base := dbResolver(db)
	return func(i int, pred string) (*relation.Relation, error) {
		if i == occ {
			return delta, nil
		}
		return base(i, pred)
	}
}

// traceCQ runs one traced pass of cq under resolve, inserting derived
// tuples into out and their reads into acc.
func traceCQ(cq *CQ, resolve relResolver, env Binding, out *relation.Relation, acc *readAcc) error {
	var headErr error
	err := traceBody("CQ "+cq.Name, cq.Body, resolve, env, func(e Binding, refs []string) bool {
		t, err := instantiateHead("CQ "+cq.Name, cq.Head, e)
		if err != nil {
			headErr = err
			return false
		}
		if err := out.Insert(t); err != nil {
			headErr = err
			return false
		}
		acc.add(t.Key(), refs)
		return true
	})
	if err != nil {
		return err
	}
	return headErr
}

// traceBody is evalBody with per-derivation source tracking.
func traceBody(what string, body []Atom, resolve relResolver, env Binding, yield func(Binding, []string) bool) error {
	bound := make(map[string]struct{}, len(env))
	for v := range env {
		bound[v] = struct{}{}
	}
	plan, err := planBody(what, body, resolve, bound)
	if err != nil {
		return err
	}
	plan.runTraced(env, yield)
	return nil
}

// runTraced mirrors run but passes yield the SourceRef of the tuple
// matched at each relation atom. The refs slice is reused across yields;
// consumers must copy what they keep.
func (p *bodyPlan) runTraced(env Binding, yield func(Binding, []string) bool) bool {
	refs := make([]string, len(p.rels))
	check := func(atoms []Atom) bool {
		for _, c := range atoms {
			ok, ground := groundAtomHolds(c, env)
			if !ground || !ok {
				return false
			}
		}
		return true
	}
	var step func(i int) bool
	step = func(i int) bool {
		if i == len(p.rels) {
			return yield(env, refs)
		}
		ra := p.rels[i]
		src := p.relSources[i]
	tuples:
		for _, tup := range src.Tuples() {
			var newly []string
			for j, term := range ra.Args {
				if !term.IsVar {
					if !term.Const.Equal(tup[j]) {
						for _, v := range newly {
							delete(env, v)
						}
						continue tuples
					}
					continue
				}
				if cur, ok := env[term.Var]; ok {
					if !cur.Equal(tup[j]) {
						for _, v := range newly {
							delete(env, v)
						}
						continue tuples
					}
					continue
				}
				env[term.Var] = tup[j]
				newly = append(newly, term.Var)
			}
			refs[i] = SourceRef(ra.Pred, tup.Key())
			ok := check(p.constraints[i+1])
			cont := true
			if ok {
				cont = step(i + 1)
			}
			for _, v := range newly {
				delete(env, v)
			}
			if !cont {
				return false
			}
		}
		return true
	}
	if !check(p.constraints[0]) {
		return true
	}
	return step(0)
}

// readAcc accumulates the union of reads per output tuple key, deduping
// refs that repeat across derivations.
type readAcc struct {
	refs map[string][]string
	seen map[string]map[string]struct{}
}

func newReadAcc() *readAcc {
	return &readAcc{refs: make(map[string][]string), seen: make(map[string]map[string]struct{})}
}

func (a *readAcc) add(key string, refs []string) {
	set := a.seen[key]
	if set == nil {
		set = make(map[string]struct{}, len(refs))
		a.seen[key] = set
	}
	for _, r := range refs {
		if _, ok := set[r]; ok {
			continue
		}
		set[r] = struct{}{}
		a.refs[key] = append(a.refs[key], r)
	}
}

func (a *readAcc) flatten() map[string][]string { return a.refs }
