package query

import "fmt"

// This file implements the classical translation from positive existential
// first-order queries to unions of conjunctive queries: every ∃FO+ query is
// equivalent to a UCQ of at most exponential size (distribute ∧ over ∨,
// flatten ∃). The paper's language lattice CQ ⊆ UCQ ⊆ ∃FO+ relies on this
// equivalence — the complexity results for the three classes coincide — and
// the test suite uses the translation to cross-check the ∃FO+ evaluator
// against the UCQ evaluator.

// ToUCQ converts a positive query (no negation, no universal
// quantification) into an equivalent UCQ. Quantified variables are renamed
// apart so shadowing is preserved. It fails if the query is not positive or
// if some disjunct would be unsafe (a head variable not bound in every
// disjunct — such queries are not expressible as safe UCQs).
func (q *FOQuery) ToUCQ() (*UCQ, error) {
	if err := checkPositive(q.Formula); err != nil {
		return nil, fmt.Errorf("query: ToUCQ: %w", err)
	}
	tr := &translator{}
	disjuncts := tr.expand(q.Formula, map[string]string{})
	out := &UCQ{Name: q.Name}
	for i, atoms := range disjuncts {
		cq := &CQ{
			Name: fmt.Sprintf("%s_%d", q.Name, i+1),
			Head: append([]Term(nil), q.Head...),
			Body: atoms,
		}
		if err := cq.Validate(); err != nil {
			return nil, fmt.Errorf("query: ToUCQ: disjunct %d is unsafe: %w", i+1, err)
		}
		out.Disjuncts = append(out.Disjuncts, cq)
	}
	if len(out.Disjuncts) == 0 {
		return nil, fmt.Errorf("query: ToUCQ: the formula has no disjuncts")
	}
	return out, nil
}

// translator renames quantified variables apart while expanding to DNF.
type translator struct{ fresh int }

// expand returns the disjuncts (atom conjunctions) of f under the renaming
// subst, which maps quantified variable names to their fresh replacements.
func (tr *translator) expand(f Formula, subst map[string]string) [][]Atom {
	switch g := f.(type) {
	case *FAtom:
		return [][]Atom{{renameAtom(g.A, subst)}}
	case *FOr:
		var out [][]Atom
		for _, s := range g.Subs {
			out = append(out, tr.expand(s, subst)...)
		}
		return out
	case *FAnd:
		// Cross product of the sub-disjunct lists.
		acc := [][]Atom{nil}
		for _, s := range g.Subs {
			sub := tr.expand(s, subst)
			var next [][]Atom
			for _, a := range acc {
				for _, b := range sub {
					merged := append(append([]Atom(nil), a...), b...)
					next = append(next, merged)
				}
			}
			acc = next
		}
		return acc
	case *FExists:
		inner := make(map[string]string, len(subst)+len(g.Vars))
		for k, v := range subst {
			inner[k] = v
		}
		for _, v := range g.Vars {
			tr.fresh++
			inner[v] = fmt.Sprintf("_e%d", tr.fresh)
		}
		return tr.expand(g.Sub, inner)
	default:
		// checkPositive rejects FNot/FForall before expansion.
		return nil
	}
}

// renameAtom applies a variable renaming to an atom copy.
func renameAtom(a Atom, subst map[string]string) Atom {
	ren := func(t Term) Term {
		if t.IsVar {
			if nv, ok := subst[t.Var]; ok {
				return V(nv)
			}
		}
		return t
	}
	switch at := a.(type) {
	case *RelAtom:
		args := make([]Term, len(at.Args))
		for i, t := range at.Args {
			args[i] = ren(t)
		}
		return &RelAtom{Pred: at.Pred, Args: args}
	case *CmpAtom:
		return &CmpAtom{Op: at.Op, Left: ren(at.Left), Right: ren(at.Right)}
	case *DistAtom:
		return &DistAtom{FnName: at.FnName, Fn: at.Fn, Left: ren(at.Left), Right: ren(at.Right), Bound: at.Bound}
	default:
		return a.cloneAtom()
	}
}
