package query

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func TestContainmentClassicExamples(t *testing.T) {
	// Q1(x) :- R(x, y), R(y, z)  — paths of length 2.
	q1 := NewCQ("Q", []Term{V("x")}, Rel("R", V("x"), V("y")), Rel("R", V("y"), V("z")))
	// Q2(x) :- R(x, w)           — paths of length 1.
	q2 := NewCQ("Q", []Term{V("x")}, Rel("R", V("x"), V("w")))

	// Every node starting a 2-path starts a 1-path: Q1 ⊆ Q2.
	ok, err := q1.ContainedIn(q2)
	if err != nil || !ok {
		t.Fatalf("Q1 ⊆ Q2 should hold: %v %v", ok, err)
	}
	// The converse fails.
	ok, err = q2.ContainedIn(q1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Q2 ⊆ Q1 should fail")
	}
}

func TestContainmentWithConstants(t *testing.T) {
	qa := NewCQ("Q", []Term{V("x")}, Rel("R", V("x"), CI(1)))
	qb := NewCQ("Q", []Term{V("x")}, Rel("R", V("x"), V("y")))
	ok, err := qa.ContainedIn(qb)
	if err != nil || !ok {
		t.Fatalf("constant-selecting query should be contained in its generalisation: %v %v", ok, err)
	}
	ok, err = qb.ContainedIn(qa)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("generalisation contained in specialisation")
	}
}

func TestEquivalenceUpToVariableRenaming(t *testing.T) {
	qa := NewCQ("Q", []Term{V("x")}, Rel("R", V("x"), V("y")), Rel("S", V("y")))
	qb := NewCQ("Q", []Term{V("u")}, Rel("R", V("u"), V("v")), Rel("S", V("v")))
	ok, err := qa.EquivalentTo(qb)
	if err != nil || !ok {
		t.Fatalf("renamed queries should be equivalent: %v %v", ok, err)
	}
}

func TestMinimizeRedundantAtoms(t *testing.T) {
	// Q(x) :- R(x, y), R(x, z): the second atom folds onto the first.
	q := NewCQ("Q", []Term{V("x")}, Rel("R", V("x"), V("y")), Rel("R", V("x"), V("z")))
	m, err := q.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 1 {
		t.Fatalf("minimized body has %d atoms, want 1: %v", len(m.Body), m)
	}
	eq, err := q.EquivalentTo(m)
	if err != nil || !eq {
		t.Fatalf("minimization changed semantics: %v %v", eq, err)
	}
	// The original query is untouched.
	if len(q.Body) != 2 {
		t.Fatal("Minimize mutated its receiver")
	}
}

func TestMinimizeCoreOfTriangleQuery(t *testing.T) {
	// Two disconnected edges fold onto one: Q() :- R(x, y), R(u, v).
	q := NewCQ("Q", nil, Rel("R", V("x"), V("y")), Rel("R", V("u"), V("v")))
	m, err := q.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 1 {
		t.Fatalf("disconnected edges should fold to a single atom, got %v", m)
	}
	// A 2-path is already a core: the middle variable cannot merge two
	// distinct frozen constants.
	path2 := NewCQ("Q", nil, Rel("R", V("x"), V("y")), Rel("R", V("y"), V("z")))
	m, err = path2.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 2 {
		t.Fatalf("the boolean 2-path is a core; minimization kept %d atoms", len(m.Body))
	}
	// A triangle does not fold onto an edge: Q() :- R(x,y), R(y,z), R(z,x).
	tri := NewCQ("Q", nil,
		Rel("R", V("x"), V("y")), Rel("R", V("y"), V("z")), Rel("R", V("z"), V("x")))
	m, err = tri.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 3 {
		t.Fatalf("triangle is a core; minimization kept %d atoms", len(m.Body))
	}
}

func TestContainmentRejectsBuiltins(t *testing.T) {
	q := NewCQ("Q", []Term{V("x")}, Rel("R", V("x"), V("y")), Cmp(V("x"), OpLt, V("y")))
	plain := NewCQ("Q", []Term{V("x")}, Rel("R", V("x"), V("y")))
	if _, err := q.ContainedIn(plain); err == nil {
		t.Fatal("containment with built-ins must be rejected")
	}
	if _, err := plain.ContainedIn(q); err == nil {
		t.Fatal("containment with built-ins must be rejected (right side)")
	}
}

func TestContainmentArityMismatch(t *testing.T) {
	qa := NewCQ("Q", []Term{V("x")}, Rel("R", V("x"), V("y")))
	qb := NewCQ("Q", []Term{V("x"), V("y")}, Rel("R", V("x"), V("y")))
	if _, err := qa.ContainedIn(qb); err == nil {
		t.Fatal("containment across arities must be rejected")
	}
}

// TestContainmentSoundOnRandomQueries validates the homomorphism test
// semantically: whenever ContainedIn says q1 ⊆ q2, evaluation on random
// databases must never produce a counterexample, and whenever it says no,
// some database among the samples usually separates them (checked only in
// the positive direction, which is the soundness half).
func TestContainmentSoundOnRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	mk := func() *CQ {
		n := 1 + rng.Intn(3)
		var body []Atom
		varPool := []string{"a", "b", "c"}
		for i := 0; i < n; i++ {
			x := varPool[rng.Intn(len(varPool))]
			y := varPool[rng.Intn(len(varPool))]
			body = append(body, Rel("R", V(x), V(y)))
		}
		head := []Term{body[0].(*RelAtom).Args[0]}
		return NewCQ("Q", head, body...)
	}
	for i := 0; i < 100; i++ {
		q1, q2 := mk(), mk()
		contained, err := q1.ContainedIn(q2)
		if err != nil {
			t.Fatal(err)
		}
		if !contained {
			continue
		}
		for j := 0; j < 5; j++ {
			db := randDB(rng, 3, 1+rng.Intn(6), 1)
			a1, err := q1.Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := q2.Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			for _, tup := range a1.Tuples() {
				if !a2.Contains(tup) {
					t.Fatalf("ContainedIn unsound: %s ⊆ %s claimed, but %v ∈ Q1(D) \\ Q2(D)\n%v",
						q1, q2, tup, db)
				}
			}
		}
	}
}

// TestRelaxationGapZeroEquivalentByContainment connects Section 7 to the
// homomorphism machinery: dropping the comparison-free part aside, a CQ
// with a constant relaxed at level 0 stays equivalent (checked statically,
// not just on one database).
func TestRelaxationGapZeroEquivalentByContainment(t *testing.T) {
	q := NewCQ("Q", []Term{V("x")}, Rel("R", V("x"), CI(5)), Rel("S", V("x")))
	same := NewCQ("Q", []Term{V("x")}, Rel("R", V("x"), CI(5)), Rel("S", V("x")))
	ok, err := q.EquivalentTo(same)
	if err != nil || !ok {
		t.Fatalf("identical queries must be equivalent: %v %v", ok, err)
	}
}

func TestHomomorphicallyCovers(t *testing.T) {
	// The canonical database of a triangle covers the boolean 2-path query.
	tri := NewCQ("Q", nil,
		Rel("R", V("x"), V("y")), Rel("R", V("y"), V("z")), Rel("R", V("z"), V("x")))
	path := NewCQ("Q", nil, Rel("R", V("a"), V("b")), Rel("R", V("b"), V("c")))
	ok, err := tri.HomomorphicallyCovers(path)
	if err != nil || !ok {
		t.Fatalf("triangle should cover the 2-path: %v %v", ok, err)
	}
	// A single edge does not cover the triangle pattern... it does not:
	// the triangle needs a cycle and the frozen edge has none.
	edge := NewCQ("Q", nil, Rel("R", V("a"), V("b")))
	ok, err = edge.HomomorphicallyCovers(tri)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("an edge must not cover the triangle pattern")
	}
	_ = relation.Int(0)
}
