package query

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// CQ is a conjunctive query
//
//	Name(Head) = ∃ (body vars \ head vars) . Body
//
// built from relation atoms and built-in predicates closed under ∧ and ∃
// (Section 2(a)). Variables of Body not appearing in Head are implicitly
// existentially quantified.
type CQ struct {
	Name string
	Head []Term
	Body []Atom
}

// NewCQ builds a conjunctive query.
func NewCQ(name string, head []Term, body ...Atom) *CQ {
	return &CQ{Name: name, Head: head, Body: body}
}

// Identity returns the SP query Q(x1..xn) = R(x1..xn), the identity query
// used throughout the paper's data-complexity lower bounds.
func Identity(name string, rel *relation.Relation) *CQ {
	head := make([]Term, rel.Arity())
	for i := range head {
		head[i] = V(fmt.Sprintf("x%d", i))
	}
	return NewCQ(name, head, Rel(rel.Name(), head...))
}

// OutName returns the output relation name RQ.
func (q *CQ) OutName() string { return q.Name }

// Arity returns the output arity.
func (q *CQ) Arity() int { return len(q.Head) }

// Language classifies the query: LangSP for a single relation atom with
// comparison constraints only, LangCQ otherwise.
func (q *CQ) Language() Language {
	if q.IsSP() {
		return LangSP
	}
	return LangCQ
}

// IsSP reports whether the query is in the SP fragment of Corollary 6.2:
// one relation atom, all other conjuncts built-in predicates.
func (q *CQ) IsSP() bool {
	relCount := 0
	for _, a := range q.Body {
		switch a.(type) {
		case *RelAtom:
			relCount++
		case *CmpAtom:
		default:
			return false
		}
	}
	return relCount == 1
}

// Validate checks range restriction: every head variable and every
// constraint variable must occur in a relation atom of the body.
func (q *CQ) Validate() error {
	bound := make(map[string]struct{})
	for _, a := range q.Body {
		if ra, ok := a.(*RelAtom); ok {
			ra.addVars(bound)
		}
	}
	for _, t := range q.Head {
		if t.IsVar {
			if _, ok := bound[t.Var]; !ok {
				return fmt.Errorf("query: CQ %s: head variable %s not bound by body", q.Name, t.Var)
			}
		}
	}
	for _, a := range q.Body {
		if _, ok := a.(*RelAtom); ok {
			continue
		}
		vars := make(map[string]struct{})
		a.addVars(vars)
		for v := range vars {
			if _, ok := bound[v]; !ok {
				return errUnsafe("CQ "+q.Name, a)
			}
		}
	}
	return nil
}

// Eval computes Q(D).
func (q *CQ) Eval(db *relation.Database) (*relation.Relation, error) {
	out := relation.NewRelation(relation.AutoSchema(q.Name, len(q.Head)))
	err := q.evalInto(db, out)
	if err != nil {
		return nil, err
	}
	out.Sort()
	return out, nil
}

// evalInto appends Q(D) into out (shared by UCQ evaluation).
func (q *CQ) evalInto(db *relation.Database, out *relation.Relation) error {
	var insertErr error
	err := evalBody("CQ "+q.Name, q.Body, dbResolver(db), Binding{}, func(env Binding) bool {
		t, err := instantiateHead("CQ "+q.Name, q.Head, env)
		if err != nil {
			insertErr = err
			return false
		}
		if err := out.Insert(t); err != nil {
			insertErr = err
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return insertErr
}

// Clone returns a deep copy.
func (q *CQ) Clone() Query { return q.cloneCQ() }

func (q *CQ) cloneCQ() *CQ {
	return &CQ{Name: q.Name, Head: append([]Term(nil), q.Head...), Body: cloneAtoms(q.Body)}
}

// Constants returns the distinct constant values appearing in the query,
// needed for adom(Q, D).
func (q *CQ) Constants() []relation.Value {
	seen := make(map[relation.Value]struct{})
	var out []relation.Value
	add := func(t Term) {
		if !t.IsVar {
			if _, ok := seen[t.Const]; !ok {
				seen[t.Const] = struct{}{}
				out = append(out, t.Const)
			}
		}
	}
	for _, t := range q.Head {
		add(t)
	}
	for _, a := range q.Body {
		switch at := a.(type) {
		case *RelAtom:
			for _, t := range at.Args {
				add(t)
			}
		case *CmpAtom:
			add(at.Left)
			add(at.Right)
		case *DistAtom:
			add(at.Left)
			add(at.Right)
		}
	}
	return out
}

// String renders the query in rule syntax.
func (q *CQ) String() string {
	parts := make([]string, len(q.Head))
	for i, t := range q.Head {
		parts[i] = t.String()
	}
	return q.Name + "(" + strings.Join(parts, ", ") + ") :- " + atomsString(q.Body) + "."
}

// UCQ is a union of conjunctive queries Q1 ∪ ... ∪ Qr (Section 2(b)). All
// disjuncts must share the output arity.
type UCQ struct {
	Name      string
	Disjuncts []*CQ
}

// NewUCQ builds a union of conjunctive queries.
func NewUCQ(name string, disjuncts ...*CQ) *UCQ {
	return &UCQ{Name: name, Disjuncts: disjuncts}
}

// OutName returns the output relation name.
func (q *UCQ) OutName() string { return q.Name }

// Arity returns the shared output arity.
func (q *UCQ) Arity() int {
	if len(q.Disjuncts) == 0 {
		return 0
	}
	return q.Disjuncts[0].Arity()
}

// Language classifies the query.
func (q *UCQ) Language() Language { return LangUCQ }

// Validate checks the disjuncts and their arity coherence.
func (q *UCQ) Validate() error {
	if len(q.Disjuncts) == 0 {
		return fmt.Errorf("query: UCQ %s has no disjuncts", q.Name)
	}
	for _, d := range q.Disjuncts {
		if err := d.Validate(); err != nil {
			return err
		}
		if d.Arity() != q.Arity() {
			return fmt.Errorf("query: UCQ %s: disjunct %s has arity %d, want %d",
				q.Name, d.Name, d.Arity(), q.Arity())
		}
	}
	return nil
}

// Eval computes the union of the disjunct answers.
func (q *UCQ) Eval(db *relation.Database) (*relation.Relation, error) {
	out := relation.NewRelation(relation.AutoSchema(q.Name, q.Arity()))
	for _, d := range q.Disjuncts {
		if err := d.evalInto(db, out); err != nil {
			return nil, err
		}
	}
	out.Sort()
	return out, nil
}

// Clone returns a deep copy.
func (q *UCQ) Clone() Query {
	ds := make([]*CQ, len(q.Disjuncts))
	for i, d := range q.Disjuncts {
		ds[i] = d.cloneCQ()
	}
	return &UCQ{Name: q.Name, Disjuncts: ds}
}

// String renders all disjuncts.
func (q *UCQ) String() string {
	parts := make([]string, len(q.Disjuncts))
	for i, d := range q.Disjuncts {
		parts[i] = d.String()
	}
	return strings.Join(parts, "\n")
}
