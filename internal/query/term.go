// Package query implements the query languages the paper parameterises the
// recommendation problems with: CQ, UCQ, ∃FO+ (positive existential FO),
// DATALOGnr, FO and DATALOG, all with the built-in predicates
// =, ≠, <, ≤, >, ≥, plus the SP (select–project) fragment of Corollary 6.2
// and the distance atoms dist(x, c) ≤ d used by the query relaxations of
// Section 7.
//
// Each language has an exact evaluator:
//
//   - CQ/UCQ and datalog rule bodies: backtracking join with eager
//     constraint checking (combined complexity NP, matching the paper's
//     membership problem);
//   - ∃FO+: recursive enumeration of satisfying bindings;
//   - FO: recursive active-domain evaluation (quantifiers range over
//     adom(Q, D)), falling back to domain enumeration for negation and
//     universal quantification (PSPACE membership);
//   - DATALOG: semi-naive fixpoint; a program whose dependency graph is
//     acyclic classifies as DATALOGnr (PSPACE membership), otherwise as full
//     DATALOG (EXPTIME membership).
package query

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// Term is a variable or a constant appearing in an atom.
type Term struct {
	IsVar bool
	Var   string
	Const relation.Value
}

// V returns a variable term.
func V(name string) Term { return Term{IsVar: true, Var: name} }

// C returns a constant term.
func C(v relation.Value) Term { return Term{Const: v} }

// CI returns an integer constant term.
func CI(i int64) Term { return C(relation.Int(i)) }

// CS returns a string constant term.
func CS(s string) Term { return C(relation.Str(s)) }

// String renders the term.
func (t Term) String() string {
	if t.IsVar {
		return t.Var
	}
	return t.Const.String()
}

// Binding maps variable names to values during evaluation.
type Binding map[string]relation.Value

// resolve returns the term's value under env, reporting whether it is ground.
func (t Term) resolve(env Binding) (relation.Value, bool) {
	if !t.IsVar {
		return t.Const, true
	}
	v, ok := env[t.Var]
	return v, ok
}

// clone returns a copy of the binding.
func (b Binding) clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// restrict returns a copy of b keeping only the named variables.
func (b Binding) restrict(vars []string) Binding {
	c := make(Binding, len(vars))
	for _, v := range vars {
		if val, ok := b[v]; ok {
			c[v] = val
		}
	}
	return c
}

// key returns a canonical encoding of the binding over the given variable
// order, used to deduplicate satisfying assignments.
func (b Binding) key(vars []string) string {
	t := make(relation.Tuple, 0, len(vars))
	for _, v := range vars {
		t = append(t, b[v])
	}
	return t.Key()
}

// sortedVars returns the sorted variable names of a set.
func sortedVars(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// CmpOp is a built-in comparison predicate.
type CmpOp int

// The built-in predicates of the paper: =, ≠, <, ≤, >, ≥.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Holds evaluates the predicate on two values.
func (op CmpOp) Holds(a, b relation.Value) bool {
	c := a.Compare(b)
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// DistanceFunc measures the distance between two values of an attribute
// domain, as in the distance functions Γ of Section 7.
type DistanceFunc func(a, b relation.Value) float64
