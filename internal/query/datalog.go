package query

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Rule is a datalog rule Head ← Body, where Head is an IDB atom and Body is
// a list of relation atoms (EDB or IDB) and built-in predicates
// (Section 2(d),(f)).
type Rule struct {
	Head *RelAtom
	Body []Atom
}

// NewRule builds a rule.
func NewRule(head *RelAtom, body ...Atom) Rule { return Rule{Head: head, Body: body} }

// String renders the rule.
func (r Rule) String() string { return r.Head.String() + " :- " + atomsString(r.Body) + "." }

// Datalog is a datalog program with a designated output predicate. If the
// dependency graph (edge p' → p when p' occurs in the body of a rule with
// head p) is acyclic the program is non-recursive (DATALOGnr); otherwise it
// is full DATALOG with inflationary fixpoint semantics.
type Datalog struct {
	Output string
	Rules  []Rule
}

// NewDatalog builds a program.
func NewDatalog(output string, rules ...Rule) *Datalog {
	return &Datalog{Output: output, Rules: rules}
}

// OutName returns the output predicate name.
func (p *Datalog) OutName() string { return p.Output }

// Arity returns the output predicate's arity.
func (p *Datalog) Arity() int {
	for _, r := range p.Rules {
		if r.Head.Pred == p.Output {
			return len(r.Head.Args)
		}
	}
	return 0
}

// idbPreds returns the set of intensional predicates (rule heads).
func (p *Datalog) idbPreds() map[string]int {
	idb := make(map[string]int)
	for _, r := range p.Rules {
		idb[r.Head.Pred] = len(r.Head.Args)
	}
	return idb
}

// IsRecursive reports whether the dependency graph has a cycle.
func (p *Datalog) IsRecursive() bool {
	idb := p.idbPreds()
	adj := make(map[string][]string)
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if ra, ok := a.(*RelAtom); ok {
				if _, isIDB := idb[ra.Pred]; isIDB {
					adj[r.Head.Pred] = append(adj[r.Head.Pred], ra.Pred)
				}
			}
		}
	}
	// Cycle detection by DFS colouring.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[string]int)
	var visit func(p string) bool
	visit = func(pred string) bool {
		colour[pred] = grey
		for _, next := range adj[pred] {
			switch colour[next] {
			case grey:
				return true
			case white:
				if visit(next) {
					return true
				}
			}
		}
		colour[pred] = black
		return false
	}
	for pred := range idb {
		if colour[pred] == white && visit(pred) {
			return true
		}
	}
	return false
}

// Language classifies the program: DATALOGnr when non-recursive, DATALOG
// otherwise.
func (p *Datalog) Language() Language {
	if p.IsRecursive() {
		return LangDatalog
	}
	return LangDatalogNR
}

// Validate checks that the output predicate is intensional, that every IDB
// predicate has a consistent arity, and that each rule is range-restricted
// (head and constraint variables bound by body relation atoms).
func (p *Datalog) Validate() error {
	if len(p.Rules) == 0 {
		return fmt.Errorf("query: datalog program %s has no rules", p.Output)
	}
	idb := make(map[string]int)
	for _, r := range p.Rules {
		if prev, ok := idb[r.Head.Pred]; ok && prev != len(r.Head.Args) {
			return fmt.Errorf("query: datalog %s: predicate %s has arities %d and %d",
				p.Output, r.Head.Pred, prev, len(r.Head.Args))
		}
		idb[r.Head.Pred] = len(r.Head.Args)
	}
	if _, ok := idb[p.Output]; !ok {
		return fmt.Errorf("query: datalog %s: output predicate has no rules", p.Output)
	}
	for _, r := range p.Rules {
		bound := make(map[string]struct{})
		for _, a := range r.Body {
			if ra, ok := a.(*RelAtom); ok {
				ra.addVars(bound)
				if n, isIDB := idb[ra.Pred]; isIDB && n != len(ra.Args) {
					return fmt.Errorf("query: datalog %s: body atom %v has arity %d, predicate defined with arity %d",
						p.Output, ra, len(ra.Args), n)
				}
			}
		}
		for _, t := range r.Head.Args {
			if t.IsVar {
				if _, ok := bound[t.Var]; !ok {
					return fmt.Errorf("query: datalog %s: rule %v: head variable %s not bound by body",
						p.Output, r, t.Var)
				}
			}
		}
		for _, a := range r.Body {
			if _, ok := a.(*RelAtom); ok {
				continue
			}
			vars := make(map[string]struct{})
			a.addVars(vars)
			for v := range vars {
				if _, ok := bound[v]; !ok {
					return errUnsafe("datalog "+p.Output, a)
				}
			}
		}
	}
	return nil
}

// Eval computes the output predicate's fixpoint value by semi-naive
// evaluation. Extensional predicates resolve against db; an IDB predicate
// shadowing an EDB relation is rejected.
func (p *Datalog) Eval(db *relation.Database) (*relation.Relation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	idbAr := p.idbPreds()
	for pred := range idbAr {
		if db.Relation(pred) != nil {
			return nil, fmt.Errorf("query: datalog %s: IDB predicate %s shadows a database relation", p.Output, pred)
		}
	}
	full := make(map[string]*relation.Relation, len(idbAr))
	delta := make(map[string]*relation.Relation, len(idbAr))
	for pred, ar := range idbAr {
		full[pred] = relation.NewRelation(relation.AutoSchema(pred, ar))
		delta[pred] = relation.NewRelation(relation.AutoSchema(pred, ar))
	}

	// ruleEval evaluates one rule with the given resolver, inserting newly
	// derived head tuples into next.
	ruleEval := func(r Rule, resolve relResolver, next map[string]*relation.Relation) error {
		var insertErr error
		err := evalBody("datalog "+p.Output, r.Body, resolve, Binding{}, func(env Binding) bool {
			t, err := instantiateHead("datalog "+p.Output, r.Head.Args, env)
			if err != nil {
				insertErr = err
				return false
			}
			if !full[r.Head.Pred].Contains(t) {
				if err := next[r.Head.Pred].Insert(t); err != nil {
					insertErr = err
					return false
				}
			}
			return true
		})
		if err != nil {
			return err
		}
		return insertErr
	}

	// Round 0: rules evaluated with all IDB predicates empty contribute the
	// base facts (only rules whose bodies have no IDB atoms can fire).
	base := func(index int, pred string) (*relation.Relation, error) {
		_ = index
		if _, isIDB := idbAr[pred]; isIDB {
			return full[pred], nil // empty at this point
		}
		r := db.Relation(pred)
		if r == nil {
			return nil, fmt.Errorf("query: datalog %s: unknown relation %q", p.Output, pred)
		}
		return r, nil
	}
	for _, r := range p.Rules {
		if err := ruleEval(r, base, delta); err != nil {
			return nil, err
		}
	}
	for pred := range idbAr {
		for _, t := range delta[pred].Tuples() {
			if err := full[pred].Insert(t); err != nil {
				return nil, err
			}
		}
	}

	// Semi-naive iteration: each round, for every rule and every IDB body
	// occurrence, evaluate with that occurrence restricted to the previous
	// delta and all other IDB occurrences reading the full relations.
	for {
		next := make(map[string]*relation.Relation, len(idbAr))
		for pred, ar := range idbAr {
			next[pred] = relation.NewRelation(relation.AutoSchema(pred, ar))
		}
		fired := false
		for _, r := range p.Rules {
			// Positions (among relation atoms) holding IDB predicates.
			pos := -1
			var idbPositions []int
			var idbPredsAt []string
			for _, a := range r.Body {
				if ra, ok := a.(*RelAtom); ok {
					pos++
					if _, isIDB := idbAr[ra.Pred]; isIDB {
						idbPositions = append(idbPositions, pos)
						idbPredsAt = append(idbPredsAt, ra.Pred)
					}
				}
			}
			for i, dp := range idbPositions {
				if delta[idbPredsAt[i]].Len() == 0 {
					continue
				}
				resolver := func(deltaPos int, deltaPred string) relResolver {
					return func(index int, pred string) (*relation.Relation, error) {
						if _, isIDB := idbAr[pred]; isIDB {
							if index == deltaPos {
								return delta[deltaPred], nil
							}
							return full[pred], nil
						}
						rel := db.Relation(pred)
						if rel == nil {
							return nil, fmt.Errorf("query: datalog %s: unknown relation %q", p.Output, pred)
						}
						return rel, nil
					}
				}(dp, idbPredsAt[i])
				if err := ruleEval(r, resolver, next); err != nil {
					return nil, err
				}
			}
		}
		for pred := range idbAr {
			if next[pred].Len() > 0 {
				fired = true
			}
			for _, t := range next[pred].Tuples() {
				if err := full[pred].Insert(t); err != nil {
					return nil, err
				}
			}
		}
		delta = next
		if !fired {
			break
		}
	}
	out := full[p.Output].Clone()
	out.Sort()
	return out, nil
}

// Clone returns a deep copy.
func (p *Datalog) Clone() Query {
	rules := make([]Rule, len(p.Rules))
	for i, r := range p.Rules {
		rules[i] = Rule{Head: r.Head.cloneAtom().(*RelAtom), Body: cloneAtoms(r.Body)}
	}
	return &Datalog{Output: p.Output, Rules: rules}
}

// String renders the program.
func (p *Datalog) String() string {
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n")
}
