package query

import (
	"testing"

	"repro/internal/relation"
)

// testDB builds a small database shared by the evaluator tests:
//
//	R(a, b) = {(1,2), (2,3), (3,4)}
//	S(b)    = {(2), (4)}
//	T(x, y) = {("a", 1), ("b", 2)}
func testDB() *relation.Database {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("R", "a", "b"),
		relation.Ints(1, 2), relation.Ints(2, 3), relation.Ints(3, 4)))
	db.Add(relation.FromTuples(relation.NewSchema("S", "b"),
		relation.Ints(2), relation.Ints(4)))
	db.Add(relation.FromTuples(relation.NewSchema("T", "x", "y"),
		relation.NewTuple(relation.Str("a"), relation.Int(1)),
		relation.NewTuple(relation.Str("b"), relation.Int(2))))
	return db
}

func mustEval(t *testing.T, q Query, db *relation.Database) *relation.Relation {
	t.Helper()
	if err := q.Validate(); err != nil {
		t.Fatalf("Validate(%s): %v", q, err)
	}
	out, err := q.Eval(db)
	if err != nil {
		t.Fatalf("Eval(%s): %v", q, err)
	}
	return out
}

func wantTuples(t *testing.T, got *relation.Relation, want ...relation.Tuple) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("got %d tuples (%v), want %d", got.Len(), got, len(want))
	}
	for _, w := range want {
		if !got.Contains(w) {
			t.Fatalf("answer %v missing tuple %v", got, w)
		}
	}
}

func TestCQJoin(t *testing.T) {
	// Q(a, c) :- R(a, b), R(b, c).
	q := NewCQ("Q", []Term{V("a"), V("c")},
		Rel("R", V("a"), V("b")), Rel("R", V("b"), V("c")))
	wantTuples(t, mustEval(t, q, testDB()), relation.Ints(1, 3), relation.Ints(2, 4))
}

func TestCQSelectionConstant(t *testing.T) {
	// Q(b) :- R(2, b).
	q := NewCQ("Q", []Term{V("b")}, Rel("R", CI(2), V("b")))
	wantTuples(t, mustEval(t, q, testDB()), relation.Ints(3))
}

func TestCQBuiltins(t *testing.T) {
	cases := []struct {
		op   CmpOp
		want []relation.Tuple
	}{
		{OpLt, []relation.Tuple{relation.Ints(1, 2), relation.Ints(2, 3), relation.Ints(3, 4)}},
		{OpGt, nil},
		{OpEq, nil},
		{OpNe, []relation.Tuple{relation.Ints(1, 2), relation.Ints(2, 3), relation.Ints(3, 4)}},
		{OpLe, []relation.Tuple{relation.Ints(1, 2), relation.Ints(2, 3), relation.Ints(3, 4)}},
		{OpGe, nil},
	}
	for _, c := range cases {
		q := NewCQ("Q", []Term{V("a"), V("b")},
			Rel("R", V("a"), V("b")), Cmp(V("a"), c.op, V("b")))
		wantTuples(t, mustEval(t, q, testDB()), c.want...)
	}
}

func TestCQConstantComparison(t *testing.T) {
	// Q(a) :- R(a, b), b >= 3.
	q := NewCQ("Q", []Term{V("a")}, Rel("R", V("a"), V("b")), Cmp(V("b"), OpGe, CI(3)))
	wantTuples(t, mustEval(t, q, testDB()), relation.Ints(2), relation.Ints(3))
}

func TestCQJoinWithSemijoin(t *testing.T) {
	// Q(a) :- R(a, b), S(b).
	q := NewCQ("Q", []Term{V("a")}, Rel("R", V("a"), V("b")), Rel("S", V("b")))
	wantTuples(t, mustEval(t, q, testDB()), relation.Ints(1), relation.Ints(3))
}

func TestCQCartesianProduct(t *testing.T) {
	// Q(b1, b2) :- S(b1), S(b2). 4 pairs.
	q := NewCQ("Q", []Term{V("b1"), V("b2")}, Rel("S", V("b1")), Rel("S", V("b2")))
	wantTuples(t, mustEval(t, q, testDB()),
		relation.Ints(2, 2), relation.Ints(2, 4), relation.Ints(4, 2), relation.Ints(4, 4))
}

func TestCQHeadConstant(t *testing.T) {
	// Q(1, b) :- S(b).
	q := NewCQ("Q", []Term{CI(1), V("b")}, Rel("S", V("b")))
	wantTuples(t, mustEval(t, q, testDB()), relation.Ints(1, 2), relation.Ints(1, 4))
}

func TestCQMixedTypes(t *testing.T) {
	// Q(x) :- T(x, y), y < 2.
	q := NewCQ("Q", []Term{V("x")}, Rel("T", V("x"), V("y")), Cmp(V("y"), OpLt, CI(2)))
	wantTuples(t, mustEval(t, q, testDB()), relation.Strs("a"))
}

func TestCQUnsafeHeadVar(t *testing.T) {
	q := NewCQ("Q", []Term{V("z")}, Rel("S", V("b")))
	if err := q.Validate(); err == nil {
		t.Fatal("expected validation error for unbound head variable")
	}
}

func TestCQUnsafeConstraintVar(t *testing.T) {
	q := NewCQ("Q", []Term{V("b")}, Rel("S", V("b")), Cmp(V("z"), OpLt, CI(1)))
	if err := q.Validate(); err == nil {
		t.Fatal("expected validation error for unbound comparison variable")
	}
	if _, err := q.Eval(testDB()); err == nil {
		t.Fatal("expected evaluation error for unsafe query")
	}
}

func TestCQUnknownRelation(t *testing.T) {
	q := NewCQ("Q", []Term{V("x")}, Rel("Nope", V("x")))
	if _, err := q.Eval(testDB()); err == nil {
		t.Fatal("expected error for unknown relation")
	}
}

func TestCQArityMismatch(t *testing.T) {
	q := NewCQ("Q", []Term{V("x")}, Rel("S", V("x"), V("y")))
	if _, err := q.Eval(testDB()); err == nil {
		t.Fatal("expected error for atom arity mismatch")
	}
}

func TestCQEmptyBodyRejectedAtEval(t *testing.T) {
	q := NewCQ("Q", []Term{CI(1)})
	// Empty body: the query yields the single constant head tuple.
	out := mustEval(t, q, testDB())
	wantTuples(t, out, relation.Ints(1))
}

func TestIdentityQuery(t *testing.T) {
	db := testDB()
	q := Identity("Q", db.Relation("R"))
	if !q.IsSP() || q.Language() != LangSP {
		t.Fatalf("identity query should classify as SP, got %v", q.Language())
	}
	out := mustEval(t, q, db)
	if !out.Equal(db.Relation("R")) {
		t.Fatalf("identity answer %v, want %v", out, db.Relation("R"))
	}
}

func TestSPClassification(t *testing.T) {
	sp := NewCQ("Q", []Term{V("a")}, Rel("R", V("a"), V("b")), Cmp(V("a"), OpLt, V("b")))
	if !sp.IsSP() {
		t.Fatal("single-atom query with comparisons should be SP")
	}
	join := NewCQ("Q", []Term{V("a")}, Rel("R", V("a"), V("b")), Rel("S", V("b")))
	if join.IsSP() || join.Language() != LangCQ {
		t.Fatal("join query should not be SP")
	}
}

func TestUCQUnion(t *testing.T) {
	// Q(x) :- S(x).  Q(x) :- R(x, b), b = 2.
	q := NewUCQ("Q",
		NewCQ("Q1", []Term{V("x")}, Rel("S", V("x"))),
		NewCQ("Q2", []Term{V("x")}, Rel("R", V("x"), V("b")), Eq(V("b"), CI(2))))
	wantTuples(t, mustEval(t, q, testDB()), relation.Ints(1), relation.Ints(2), relation.Ints(4))
	if q.Language() != LangUCQ {
		t.Fatalf("language = %v", q.Language())
	}
}

func TestUCQValidation(t *testing.T) {
	if err := NewUCQ("Q").Validate(); err == nil {
		t.Fatal("empty UCQ should fail validation")
	}
	bad := NewUCQ("Q",
		NewCQ("Q1", []Term{V("x")}, Rel("S", V("x"))),
		NewCQ("Q2", []Term{V("x"), V("b")}, Rel("R", V("x"), V("b"))))
	if err := bad.Validate(); err == nil {
		t.Fatal("arity-mismatched UCQ should fail validation")
	}
}

func TestUCQEqualsUnionOfCQs(t *testing.T) {
	db := testDB()
	d1 := NewCQ("Q1", []Term{V("x")}, Rel("S", V("x")))
	d2 := NewCQ("Q2", []Term{V("x")}, Rel("R", V("x"), V("b")))
	u := NewUCQ("Q", d1, d2)
	got := mustEval(t, u, db)
	want := relation.NewRelation(relation.AutoSchema("Q", 1))
	for _, d := range []*CQ{d1, d2} {
		r := mustEval(t, d, db)
		for _, tup := range r.Tuples() {
			if err := want.Insert(tup); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !got.Equal(want) {
		t.Fatalf("UCQ answer %v differs from union of CQ answers %v", got, want)
	}
}

func TestCQCloneIsDeep(t *testing.T) {
	q := NewCQ("Q", []Term{V("a")}, Rel("R", V("a"), V("b")), Cmp(V("b"), OpLt, CI(9)))
	c := q.Clone().(*CQ)
	c.Body[1].(*CmpAtom).Right = CI(0)
	if q.Body[1].(*CmpAtom).Right.Const.Int64() != 9 {
		t.Fatal("clone shares constraint atoms with original")
	}
}

func TestCQConstants(t *testing.T) {
	q := NewCQ("Q", []Term{V("a"), CI(7)}, Rel("R", V("a"), CS("x")), Cmp(V("a"), OpLt, CI(7)))
	consts := q.Constants()
	if len(consts) != 2 {
		t.Fatalf("constants = %v, want two distinct values", consts)
	}
}
