package query

import (
	"fmt"
	"testing"

	"repro/internal/relation"
)

// edgeDB builds a directed path graph 1 -> 2 -> ... -> n plus a back edge
// n -> 1 when cyclic is set.
func edgeDB(n int, cyclic bool) *relation.Database {
	db := relation.NewDatabase()
	r := relation.NewRelation(relation.NewSchema("E", "src", "dst"))
	for i := 1; i < n; i++ {
		if err := r.Insert(relation.Ints(int64(i), int64(i+1))); err != nil {
			panic(err)
		}
	}
	if cyclic {
		if err := r.Insert(relation.Ints(int64(n), 1)); err != nil {
			panic(err)
		}
	}
	db.Add(r)
	return db
}

// transitiveClosure is the canonical recursive program.
func transitiveClosure() *Datalog {
	return NewDatalog("TC",
		NewRule(Rel("TC", V("x"), V("y")), Rel("E", V("x"), V("y"))),
		NewRule(Rel("TC", V("x"), V("z")), Rel("E", V("x"), V("y")), Rel("TC", V("y"), V("z"))))
}

func TestDatalogTransitiveClosurePath(t *testing.T) {
	const n = 6
	out := mustEval(t, transitiveClosure(), edgeDB(n, false))
	// Path graph: n*(n-1)/2 pairs.
	if out.Len() != n*(n-1)/2 {
		t.Fatalf("TC size = %d, want %d", out.Len(), n*(n-1)/2)
	}
	if !out.Contains(relation.Ints(1, 6)) || out.Contains(relation.Ints(6, 1)) {
		t.Fatal("TC content wrong")
	}
}

func TestDatalogTransitiveClosureCycle(t *testing.T) {
	const n = 5
	out := mustEval(t, transitiveClosure(), edgeDB(n, true))
	// Strongly connected: all n^2 pairs reachable.
	if out.Len() != n*n {
		t.Fatalf("TC size = %d, want %d", out.Len(), n*n)
	}
}

func TestDatalogClassification(t *testing.T) {
	if transitiveClosure().Language() != LangDatalog {
		t.Fatal("transitive closure should classify as recursive DATALOG")
	}
	nr := NewDatalog("Out",
		NewRule(Rel("P", V("x")), Rel("E", V("x"), V("y"))),
		NewRule(Rel("Out", V("x")), Rel("P", V("x")), Rel("E", V("x"), V("y"))))
	if nr.Language() != LangDatalogNR {
		t.Fatal("acyclic program should classify as DATALOGnr")
	}
	if nr.IsRecursive() {
		t.Fatal("acyclic program reported recursive")
	}
}

func TestDatalogNRMatchesUCQ(t *testing.T) {
	// Out(x) :- E(x, y).  Out(y) :- E(x, y).  equals the UCQ of projections.
	db := edgeDB(5, false)
	prog := NewDatalog("Out",
		NewRule(Rel("Out", V("x")), Rel("E", V("x"), V("y"))),
		NewRule(Rel("Out", V("y")), Rel("E", V("x"), V("y"))))
	ucq := NewUCQ("Out",
		NewCQ("Q1", []Term{V("x")}, Rel("E", V("x"), V("y"))),
		NewCQ("Q2", []Term{V("y")}, Rel("E", V("x"), V("y"))))
	if !mustEval(t, prog, db).Equal(mustEval(t, ucq, db)) {
		t.Fatal("non-recursive datalog disagrees with equivalent UCQ")
	}
}

func TestDatalogBuiltinsInBodies(t *testing.T) {
	// Reach only along edges with src < 3.
	db := edgeDB(6, false)
	prog := NewDatalog("TC",
		NewRule(Rel("TC", V("x"), V("y")), Rel("E", V("x"), V("y")), Cmp(V("x"), OpLt, CI(3))),
		NewRule(Rel("TC", V("x"), V("z")),
			Rel("E", V("x"), V("y")), Cmp(V("x"), OpLt, CI(3)), Rel("TC", V("y"), V("z"))))
	out := mustEval(t, prog, db)
	wantTuples(t, out, relation.Ints(1, 2), relation.Ints(2, 3), relation.Ints(1, 3))
}

func TestDatalogMultipleIDBs(t *testing.T) {
	// Even/odd distance from node 1.
	db := edgeDB(6, false)
	prog := NewDatalog("Even",
		NewRule(Rel("Even", V("x")), Rel("E", V("x"), V("y")), Eq(V("x"), CI(1))),
		NewRule(Rel("Odd", V("y")), Rel("Even", V("x")), Rel("E", V("x"), V("y"))),
		NewRule(Rel("Even", V("y")), Rel("Odd", V("x")), Rel("E", V("x"), V("y"))))
	out := mustEval(t, prog, db)
	wantTuples(t, out, relation.Ints(1), relation.Ints(3), relation.Ints(5))
}

func TestDatalogValidation(t *testing.T) {
	cases := []struct {
		name string
		prog *Datalog
	}{
		{"no rules", NewDatalog("Q")},
		{"output not IDB", NewDatalog("Q", NewRule(Rel("P", V("x")), Rel("E", V("x"), V("y"))))},
		{"head var unbound", NewDatalog("Q", NewRule(Rel("Q", V("z")), Rel("E", V("x"), V("y"))))},
		{"inconsistent arity", NewDatalog("Q",
			NewRule(Rel("Q", V("x")), Rel("E", V("x"), V("y"))),
			NewRule(Rel("Q", V("x"), V("y")), Rel("E", V("x"), V("y"))))},
		{"unsafe builtin", NewDatalog("Q",
			NewRule(Rel("Q", V("x")), Rel("E", V("x"), V("y")), Cmp(V("z"), OpLt, CI(1))))},
	}
	for _, c := range cases {
		if err := c.prog.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestDatalogIDBShadowsEDB(t *testing.T) {
	prog := NewDatalog("E", NewRule(Rel("E", V("x"), V("y")), Rel("E", V("x"), V("y"))))
	if _, err := prog.Eval(edgeDB(3, false)); err == nil {
		t.Fatal("IDB predicate shadowing an EDB relation must be rejected")
	}
}

func TestDatalogUnknownEDB(t *testing.T) {
	prog := NewDatalog("Q", NewRule(Rel("Q", V("x")), Rel("Missing", V("x"))))
	if _, err := prog.Eval(edgeDB(3, false)); err == nil {
		t.Fatal("unknown EDB relation must be rejected")
	}
}

func TestDatalogFixpointIdempotent(t *testing.T) {
	// Evaluating twice gives the same result (fixpoint is deterministic).
	db := edgeDB(7, true)
	prog := transitiveClosure()
	a := mustEval(t, prog, db)
	b := mustEval(t, prog, db)
	if !a.Equal(b) {
		t.Fatal("datalog evaluation is not deterministic")
	}
}

func TestDatalogMonotoneInEDB(t *testing.T) {
	// Adding facts can only grow the fixpoint (datalog is monotone).
	prog := transitiveClosure()
	small := edgeDB(4, false)
	large := edgeDB(4, false)
	if err := large.Relation("E").Insert(relation.Ints(4, 1)); err != nil {
		t.Fatal(err)
	}
	outSmall := mustEval(t, prog, small)
	outLarge := mustEval(t, prog, large)
	for _, tup := range outSmall.Tuples() {
		if !outLarge.Contains(tup) {
			t.Fatalf("monotonicity violated: %v lost after adding a fact", tup)
		}
	}
}

func TestDatalogSameGenerationProgram(t *testing.T) {
	// A classic nonlinear recursion: same-generation over a small tree.
	db := relation.NewDatabase()
	par := relation.NewRelation(relation.NewSchema("Par", "child", "parent"))
	// Tree: 1 has children 2,3; 2 has children 4,5; 3 has child 6.
	for _, e := range [][2]int64{{2, 1}, {3, 1}, {4, 2}, {5, 2}, {6, 3}} {
		if err := par.Insert(relation.Ints(e[0], e[1])); err != nil {
			t.Fatal(err)
		}
	}
	db.Add(par)
	prog := NewDatalog("SG",
		NewRule(Rel("SG", V("x"), V("x")), Rel("Par", V("x"), V("p"))),
		NewRule(Rel("SG", V("x"), V("x")), Rel("Par", V("c"), V("x"))),
		NewRule(Rel("SG", V("x"), V("y")),
			Rel("Par", V("x"), V("px")), Rel("Par", V("y"), V("py")), Rel("SG", V("px"), V("py"))))
	out := mustEval(t, prog, db)
	if !out.Contains(relation.Ints(4, 6)) || !out.Contains(relation.Ints(2, 3)) {
		t.Fatalf("same-generation missing expected pairs: %v", out)
	}
	if out.Contains(relation.Ints(2, 4)) {
		t.Fatal("same-generation related nodes of different depth")
	}
}

func TestDatalogSemiNaiveAgreesWithNaive(t *testing.T) {
	// Reference naive fixpoint for transitive closure, compared on several
	// graph sizes.
	for _, n := range []int{2, 4, 8} {
		for _, cyclic := range []bool{false, true} {
			db := edgeDB(n, cyclic)
			got := mustEval(t, transitiveClosure(), db)
			want := naiveTC(db.Relation("E"))
			if !got.Equal(want) {
				t.Fatalf("n=%d cyclic=%v: semi-naive %v, naive %v", n, cyclic, got, want)
			}
		}
	}
}

// naiveTC computes transitive closure by repeated squaring-free iteration.
func naiveTC(edges *relation.Relation) *relation.Relation {
	out := relation.NewRelation(relation.AutoSchema("TC", 2))
	for _, e := range edges.Tuples() {
		if err := out.Insert(e.Clone()); err != nil {
			panic(err)
		}
	}
	for {
		added := false
		for _, a := range out.Tuples() {
			for _, b := range edges.Tuples() {
				if a[1].Equal(b[0]) {
					tup := relation.NewTuple(a[0], b[1])
					if !out.Contains(tup) {
						if err := out.Insert(tup); err != nil {
							panic(err)
						}
						added = true
					}
				}
			}
		}
		if !added {
			break
		}
	}
	return out
}

func TestDatalogString(t *testing.T) {
	s := transitiveClosure().String()
	if s == "" {
		t.Fatal("empty String()")
	}
	want := fmt.Sprintf("TC(x, y) :- E(x, y).%sTC(x, z) :- E(x, y), TC(y, z).", "\n")
	if s != want {
		t.Fatalf("String() = %q, want %q", s, want)
	}
}
