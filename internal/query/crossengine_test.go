package query

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// randDB generates a small random database over two relations R/2 and S/1
// with values in [0, domain).
func randDB(rng *rand.Rand, domain, nr, ns int) *relation.Database {
	db := relation.NewDatabase()
	r := relation.NewRelation(relation.NewSchema("R", "a", "b"))
	for i := 0; i < nr; i++ {
		if err := r.Insert(relation.Ints(int64(rng.Intn(domain)), int64(rng.Intn(domain)))); err != nil {
			panic(err)
		}
	}
	s := relation.NewRelation(relation.NewSchema("S", "a"))
	for i := 0; i < ns; i++ {
		if err := s.Insert(relation.Ints(int64(rng.Intn(domain)))); err != nil {
			panic(err)
		}
	}
	db.Add(r)
	db.Add(s)
	return db
}

// randCQ generates a random safe CQ over R/2, S/1 with 2-3 relation atoms,
// an optional comparison, and a head projecting 1-2 bound variables.
func randCQ(rng *rand.Rand, domain int) *CQ {
	nAtoms := 1 + rng.Intn(3)
	varPool := []string{"v0", "v1", "v2", "v3"}
	var body []Atom
	bound := map[string]bool{}
	pick := func() Term {
		if rng.Intn(5) == 0 {
			return CI(int64(rng.Intn(domain)))
		}
		v := varPool[rng.Intn(len(varPool))]
		bound[v] = true
		return V(v)
	}
	for i := 0; i < nAtoms; i++ {
		if rng.Intn(3) == 0 {
			body = append(body, Rel("S", pick()))
		} else {
			body = append(body, Rel("R", pick(), pick()))
		}
	}
	var boundVars []string
	for _, v := range varPool {
		if bound[v] {
			boundVars = append(boundVars, v)
		}
	}
	if len(boundVars) == 0 {
		body = append(body, Rel("S", V("v0")))
		boundVars = []string{"v0"}
	}
	if rng.Intn(2) == 0 {
		ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		body = append(body, Cmp(V(boundVars[rng.Intn(len(boundVars))]),
			ops[rng.Intn(len(ops))], CI(int64(rng.Intn(domain)))))
	}
	nHead := 1 + rng.Intn(min(2, len(boundVars)))
	head := make([]Term, nHead)
	for i := 0; i < nHead; i++ {
		head[i] = V(boundVars[i])
	}
	return NewCQ("Q", head, body...)
}

// cqAsFormula reinterprets a CQ body as an FO formula with the non-head
// variables existentially quantified.
func cqAsFormula(q *CQ) *FOQuery {
	var subs []Formula
	for _, a := range q.Body {
		subs = append(subs, Atomf(a.cloneAtom()))
	}
	headVars := map[string]bool{}
	for _, t := range q.Head {
		if t.IsVar {
			headVars[t.Var] = true
		}
	}
	varSet := atomsVars(q.Body)
	var exVars []string
	for _, v := range sortedVars(varSet) {
		if !headVars[v] {
			exVars = append(exVars, v)
		}
	}
	f := And(subs...)
	if len(exVars) > 0 {
		f = Exists(exVars, f)
	}
	return NewFO(q.Name, append([]Term(nil), q.Head...), f)
}

// TestCQAgainstFOEngine cross-checks the backtracking CQ evaluator against
// the active-domain FO evaluator on 200 random query/database pairs: the
// two engines implement the same semantics through entirely different code
// paths.
func TestCQAgainstFOEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		db := randDB(rng, 4, 2+rng.Intn(6), 1+rng.Intn(4))
		q := randCQ(rng, 4)
		if err := q.Validate(); err != nil {
			continue // rare unsafe draw; skip
		}
		cqAns, err := q.Eval(db)
		if err != nil {
			t.Fatalf("instance %d: CQ eval: %v\n%s", i, err, q)
		}
		fo := cqAsFormula(q)
		foAns, err := fo.Eval(db)
		if err != nil {
			t.Fatalf("instance %d: FO eval: %v\n%s", i, err, fo)
		}
		if !cqAns.Equal(foAns) {
			t.Fatalf("instance %d: engines disagree\nquery: %s\nCQ: %v\nFO: %v\ndb:\n%v",
				i, q, cqAns, foAns, db)
		}
	}
}

// TestUCQAgainstFOEngine does the same for unions: UCQ vs the FO
// disjunction of the disjunct formulas.
func TestUCQAgainstFOEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for i := 0; i < 100; i++ {
		db := randDB(rng, 3, 2+rng.Intn(5), 1+rng.Intn(3))
		d1 := randCQ(rng, 3)
		d2 := randCQ(rng, 3)
		// Align arities: project both to one column.
		d1.Head = d1.Head[:1]
		d2.Head = d2.Head[:1]
		u := NewUCQ("Q", d1, d2)
		if u.Validate() != nil {
			continue
		}
		ucqAns, err := u.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		f1 := cqAsFormula(d1)
		f2 := cqAsFormula(d2)
		// Rename both head variables to a common name.
		h := V("h")
		r1 := And(f1.Formula, Atomf(Eq(h, f1.Head[0])))
		r2 := And(f2.Formula, Atomf(Eq(h, f2.Head[0])))
		fo := NewFO("Q", []Term{h}, Or(existsAllBut(r1, "h"), existsAllBut(r2, "h")))
		foAns, err := fo.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		if !ucqAns.Equal(foAns) {
			t.Fatalf("instance %d: UCQ %v vs FO %v\n%s\n%s", i, ucqAns, foAns, u, fo)
		}
	}
}

// existsAllBut closes all free variables of f except keep.
func existsAllBut(f Formula, keep string) Formula {
	var ex []string
	for _, v := range freeVars(f) {
		if v != keep {
			ex = append(ex, v)
		}
	}
	if len(ex) == 0 {
		return f
	}
	return Exists(ex, f)
}

// TestDatalogNRAgainstCQComposition checks that evaluating a two-layer
// non-recursive program equals composing the layer queries by hand.
func TestDatalogNRAgainstCQComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 50; i++ {
		db := randDB(rng, 4, 3+rng.Intn(6), 2)
		prog := NewDatalog("Out",
			NewRule(Rel("Mid", V("x"), V("y")), Rel("R", V("x"), V("y")), Rel("S", V("x"))),
			NewRule(Rel("Out", V("x")), Rel("Mid", V("x"), V("y")), Rel("R", V("y"), V("z"))))
		progAns, err := prog.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		mid, err := NewCQ("Mid", []Term{V("x"), V("y")},
			Rel("R", V("x"), V("y")), Rel("S", V("x"))).Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		db2 := db.WithRelation(mid)
		want, err := NewCQ("Out", []Term{V("x")},
			Rel("Mid", V("x"), V("y")), Rel("R", V("y"), V("z"))).Eval(db2)
		if err != nil {
			t.Fatal(err)
		}
		if !progAns.Equal(want) {
			t.Fatalf("instance %d: program %v vs composition %v", i, progAns, want)
		}
	}
}

func TestRandCQGeneratorProducesVariety(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	langs := map[Language]int{}
	for i := 0; i < 50; i++ {
		q := randCQ(rng, 3)
		langs[q.Language()]++
	}
	if len(langs) < 2 {
		t.Fatalf("generator variety too low: %v", langs)
	}
	_ = fmt.Sprint(langs)
}
