package query

import (
	"fmt"

	"repro/internal/relation"
)

// Language identifies the query language a query belongs to, mirroring the
// lattice SP ⊆ CQ ⊆ UCQ ⊆ ∃FO+ ⊆ {DATALOGnr, FO} ⊆ DATALOG studied in the
// paper.
type Language int

// The languages of Section 2 (plus SP from Corollary 6.2).
const (
	LangSP Language = iota
	LangCQ
	LangUCQ
	LangEFOPlus
	LangDatalogNR
	LangFO
	LangDatalog
)

// String returns the paper's name for the language.
func (l Language) String() string {
	switch l {
	case LangSP:
		return "SP"
	case LangCQ:
		return "CQ"
	case LangUCQ:
		return "UCQ"
	case LangEFOPlus:
		return "∃FO+"
	case LangDatalogNR:
		return "DATALOGnr"
	case LangFO:
		return "FO"
	case LangDatalog:
		return "DATALOG"
	default:
		return fmt.Sprintf("Language(%d)", int(l))
	}
}

// Query is a selection query Q or compatibility constraint Qc in one of the
// languages LQ. Eval returns the answer relation Q(D) under set semantics.
type Query interface {
	// Eval computes Q(D).
	Eval(db *relation.Database) (*relation.Relation, error)
	// OutName is the name of the output schema RQ.
	OutName() string
	// Arity is the arity of the output schema.
	Arity() int
	// Language classifies the query.
	Language() Language
	// Validate checks well-formedness (range restriction, arity coherence).
	Validate() error
	// Clone returns a deep copy, used by the relaxation rewrites of
	// Section 7.
	Clone() Query
	String() string
}

// errUnsafe reports a body whose constraint atoms never become ground, i.e.
// a query that is not range-restricted.
func errUnsafe(what string, a Atom) error {
	return fmt.Errorf("query: %s: constraint %v has variables not bound by any relation atom", what, a)
}

// bodyPlan is a compiled rule body: relation atoms in evaluation order, each
// followed by the constraint atoms that become ground once it is matched.
type bodyPlan struct {
	rels        []*RelAtom
	relSources  []*relation.Relation // parallel to rels
	constraints [][]Atom             // constraints[i] checked after rels[i-1]; constraints[0] ground at start
}

// relResolver maps an occurrence of a relation atom to the relation it scans.
// index is the position of the atom within the body's relation atoms.
type relResolver func(index int, pred string) (*relation.Relation, error)

// dbResolver resolves predicates directly against a database.
func dbResolver(db *relation.Database) relResolver {
	return func(_ int, pred string) (*relation.Relation, error) {
		r := db.Relation(pred)
		if r == nil {
			return nil, fmt.Errorf("query: unknown relation %q", pred)
		}
		return r, nil
	}
}

// planBody splits a body into relation atoms and constraints, assigning each
// constraint to the earliest point at which it is ground. initiallyBound
// lists variables already bound by the caller (e.g. by an enclosing formula).
func planBody(what string, body []Atom, resolve relResolver, initiallyBound map[string]struct{}) (*bodyPlan, error) {
	plan := &bodyPlan{}
	bound := make(map[string]struct{}, len(initiallyBound))
	for v := range initiallyBound {
		bound[v] = struct{}{}
	}
	var constraints []Atom
	for _, a := range body {
		if ra, ok := a.(*RelAtom); ok {
			plan.rels = append(plan.rels, ra)
		} else {
			constraints = append(constraints, a)
		}
	}
	plan.constraints = make([][]Atom, len(plan.rels)+1)
	plan.relSources = make([]*relation.Relation, len(plan.rels))

	// boundAfter[i] = variables bound once relation atoms [0, i) matched.
	assigned := make([]bool, len(constraints))
	place := func(step int) {
		for ci, c := range constraints {
			if assigned[ci] {
				continue
			}
			vars := make(map[string]struct{})
			c.addVars(vars)
			ground := true
			for v := range vars {
				if _, ok := bound[v]; !ok {
					ground = false
					break
				}
			}
			if ground {
				plan.constraints[step] = append(plan.constraints[step], c)
				assigned[ci] = true
			}
		}
	}
	place(0)
	for i, ra := range plan.rels {
		src, err := resolve(i, ra.Pred)
		if err != nil {
			return nil, err
		}
		if len(ra.Args) != src.Arity() {
			return nil, fmt.Errorf("query: %s: atom %v has arity %d but relation %s has arity %d",
				what, ra, len(ra.Args), ra.Pred, src.Arity())
		}
		plan.relSources[i] = src
		for _, t := range ra.Args {
			if t.IsVar {
				bound[t.Var] = struct{}{}
			}
		}
		place(i + 1)
	}
	for ci, c := range constraints {
		if !assigned[ci] {
			return nil, errUnsafe(what, c)
		}
	}
	return plan, nil
}

// run enumerates all bindings extending env that satisfy the planned body,
// invoking yield for each; evaluation stops early if yield returns false.
// env is mutated during the search and restored before returning.
func (p *bodyPlan) run(env Binding, yield func(Binding) bool) bool {
	var step func(i int) bool
	check := func(atoms []Atom) bool {
		for _, c := range atoms {
			ok, ground := groundAtomHolds(c, env)
			if !ground || !ok {
				return false
			}
		}
		return true
	}
	step = func(i int) bool {
		if i == len(p.rels) {
			return yield(env)
		}
		ra := p.rels[i]
		src := p.relSources[i]
	tuples:
		for _, tup := range src.Tuples() {
			var newly []string
			for j, term := range ra.Args {
				if !term.IsVar {
					if !term.Const.Equal(tup[j]) {
						for _, v := range newly {
							delete(env, v)
						}
						continue tuples
					}
					continue
				}
				if cur, ok := env[term.Var]; ok {
					if !cur.Equal(tup[j]) {
						for _, v := range newly {
							delete(env, v)
						}
						continue tuples
					}
					continue
				}
				env[term.Var] = tup[j]
				newly = append(newly, term.Var)
			}
			ok := check(p.constraints[i+1]) // constraints ground after this atom
			cont := true
			if ok {
				cont = step(i + 1)
			}
			for _, v := range newly {
				delete(env, v)
			}
			if !cont {
				return false
			}
		}
		return true
	}
	if !check(p.constraints[0]) {
		return true
	}
	return step(0)
}

// evalBody plans and runs a body in one call.
func evalBody(what string, body []Atom, resolve relResolver, env Binding, yield func(Binding) bool) error {
	bound := make(map[string]struct{}, len(env))
	for v := range env {
		bound[v] = struct{}{}
	}
	plan, err := planBody(what, body, resolve, bound)
	if err != nil {
		return err
	}
	plan.run(env, yield)
	return nil
}

// instantiateHead builds the output tuple for a head under env.
func instantiateHead(what string, head []Term, env Binding) (relation.Tuple, error) {
	t := make(relation.Tuple, len(head))
	for i, term := range head {
		v, ok := term.resolve(env)
		if !ok {
			return nil, fmt.Errorf("query: %s: head variable %s not bound by body (query is not range-restricted)", what, term.Var)
		}
		t[i] = v
	}
	return t, nil
}
