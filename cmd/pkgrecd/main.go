// Command pkgrecd is the package recommendation daemon: it owns named item
// collections and serves the six problems (RPP, FRP, MBP, CPP, QRPP, ARPP)
// over JSON-over-HTTP with result caching, request coalescing, a bounded
// parallel solve pool, and batched evaluation over shared collection
// snapshots at POST /v1/batch (internal/serve). See docs/serving.md for
// the API with a copy-pasteable curl session, and docs/operations.md for
// the operator's guide (flags, /v1/stats counter semantics, cache and
// deadline tuning, load measurement with cmd/recload).
//
//	pkgrecd -addr :8080 -load travel=travel.json -load courses=courses.json
//
// Collections load from the internal/relation JSON codec (the same files
// cmd/pkgrec -db takes), can be added or swapped at runtime with
// PUT /v1/collections/{name}, and mutated incrementally with
// POST /v1/collections/{name}/delta — tuple upserts and deletes that keep
// cached results and warmed problem state over unaffected relations valid
// while readers keep solving against their pinned snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // -pprof flag: profiling handlers on DefaultServeMux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/relation"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("pkgrecd: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		cacheSize   = flag.Int("cache", 4096, "result cache entries")
		probCache   = flag.Int("problem-cache", 0, "prepared problems kept per collection version (0 = 256)")
		maxInFlight = flag.Int("max-concurrent", 0, "max solves running at once (0 = GOMAXPROCS)")
		engWorkers  = flag.Int("workers", 1, "engine workers per solve (requests may override)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default solve deadline (0 = none)")
		maxQueue    = flag.Int("max-queue", 0, "max solves one collection may have waiting before its next solve sheds with 429 (0 = 16x max-concurrent)")
		shedAfter   = flag.Duration("shed-threshold", 0, "shed non-cheap solves whose predicted wait exceeds this (0 = disabled)")
		cheapAfter  = flag.Duration("cheap-threshold", 0, "predicted cost at or below this rides the express admission lane (0 = 2ms)")
		walDir      = flag.String("wal-dir", "", "directory for collection durability (delta WAL + snapshots); empty = in-memory only")
		walCompact  = flag.Int64("wal-compact", 0, "compact a collection's WAL once it exceeds this many bytes (0 = 4MiB)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty = off")
		loads       []string
	)
	flag.Func("load", "collection to serve, as name=dbfile.json (repeatable)", func(v string) error {
		loads = append(loads, v)
		return nil
	})
	flag.Parse()

	srv := serve.NewServer(serve.Options{
		CacheSize:        *cacheSize,
		ProblemCacheSize: *probCache,
		MaxConcurrent:    *maxInFlight,
		EngineWorkers:    *engWorkers,
		DefaultTimeout:   *timeout,
		MaxQueue:         *maxQueue,
		ShedThreshold:    *shedAfter,
		CheapThreshold:   *cheapAfter,
	})
	if *walDir != "" {
		// Durability first: recover persisted collections before -load
		// runs, so a reload of identical content is the idempotent no-op
		// SetCollection promises, and live deltas land in the log.
		if err := srv.OpenWAL(serve.WALConfig{Dir: *walDir, CompactBytes: *walCompact}); err != nil {
			log.Fatalf("opening WAL at %s: %v", *walDir, err)
		}
		st := srv.Stats()
		log.Printf("durability on at %s: %d collections recovered, %d records replayed",
			*walDir, st.WALCollections, st.WALReplayed)
	}
	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers; a
			// dedicated listener keeps profiling off the service port.
			log.Printf("pprof on %s", *pprofAddr)
			log.Printf("pprof server: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}
	for _, l := range loads {
		name, path, ok := strings.Cut(l, "=")
		if !ok || name == "" || path == "" {
			log.Fatalf("-load %q: want name=dbfile.json", l)
		}
		info, err := loadCollection(srv, name, path)
		if err != nil {
			log.Fatalf("loading %q: %v", l, err)
		}
		log.Printf("collection %s: %d relations, %d tuples (version %d, fingerprint %s)",
			info.Name, info.Relations, info.Tuples, info.Version, info.Fingerprint)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("listening on %s", *addr)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("closing WAL: %v", err)
	}
	st := srv.Stats()
	log.Printf("served %d requests (%.0f%% cache hits, %d coalesced, %d shed, %d errors)",
		st.Requests, 100*st.HitRate, st.Coalesced, st.Shed, st.Errors)
}

func loadCollection(srv *serve.Server, name, path string) (serve.CollectionInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return serve.CollectionInfo{}, err
	}
	defer f.Close()
	db, err := relation.ReadJSON(f)
	if err != nil {
		return serve.CollectionInfo{}, fmt.Errorf("%s: %w", path, err)
	}
	return srv.SetCollection(name, db), nil
}
