// Command recbench regenerates the paper's evaluation artefacts — Table 8.1
// (combined complexity) and Table 8.2 (data complexity) plus the ablation
// rows — as measured scaling series:
//
//	recbench            # full run
//	recbench -quick     # smaller parameters
//	recbench -table 82  # one table only (81 | 82 | abl | par | all)
//	recbench -table par -workers 8
//	                    # serial vs parallel engine on the same families
//
// Absolute times are machine-dependent; the reproduced signal is the growth
// shape per row (exponential for the hard settings, polynomial for the
// constant-bound and item settings), matching the paper's complexity
// classes. BENCHMARKS.md records a reference engine run.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recbench: ")
	var (
		quick   = flag.Bool("quick", false, "use smaller instance parameters")
		table   = flag.String("table", "all", "which table to run: 81 | 82 | abl | par | all")
		workers = flag.Int("workers", 0, "worker goroutines for the parallel engine rows (0 = GOMAXPROCS)")
	)
	flag.Parse()

	run := func(title string, fams []experiments.Family) {
		rows := experiments.RunAll(fams)
		fmt.Println(experiments.Render(title, rows))
		for _, r := range rows {
			if r.Err != nil {
				log.Fatalf("row %s failed: %v", r.Family.ID, r.Err)
			}
		}
	}
	switch *table {
	case "81":
		run("Table 8.1 — combined complexity (measured scaling)", experiments.Table81(*quick))
	case "82":
		run("Table 8.2 — data complexity (measured scaling)", experiments.Table82(*quick))
	case "abl":
		run("Ablations (design choices)", experiments.Ablations(*quick))
	case "par":
		run("Engine comparison — serial vs parallel+incremental", experiments.EngineRows(*quick, *workers))
	case "all":
		run("Table 8.1 — combined complexity (measured scaling)", experiments.Table81(*quick))
		run("Table 8.2 — data complexity (measured scaling)", experiments.Table82(*quick))
		run("Ablations (design choices)", experiments.Ablations(*quick))
		run("Engine comparison — serial vs parallel+incremental", experiments.EngineRows(*quick, *workers))
	default:
		log.Fatalf("unknown table %q", *table)
	}
}
