// Command recbench regenerates the paper's evaluation artefacts — Table 8.1
// (combined complexity) and Table 8.2 (data complexity) plus the ablation
// rows — as measured scaling series:
//
//	recbench            # full run
//	recbench -quick     # smaller parameters
//	recbench -table 82  # one table only (81 | 82 | abl | par | bb | relax | solver | all)
//	recbench -table par -workers 8
//	                    # serial vs parallel engine on the same families
//	recbench -table bb  # branch-and-bound vs exhaustive engine
//	recbench -table relax
//	                    # QRPP per-assignment re-solve loop vs the
//	                    # incremental solve-session engine (nodes + resumes)
//	recbench -table solver
//	                    # branch-and-bound engine vs the pseudo-Boolean
//	                    # backend (DFS nodes vs PB decisions/conflicts)
//	recbench -quick -json > BENCH_quick.json
//	                    # machine-readable results (family, ns/op, nodes
//	                    # visited/pruned); CI archives this artifact
//
// Absolute times are machine-dependent; the reproduced signal is the growth
// shape per row (exponential for the hard settings, polynomial for the
// constant-bound and item settings), matching the paper's complexity
// classes. BENCHMARKS.md records a reference engine run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recbench: ")
	var (
		quick   = flag.Bool("quick", false, "use smaller instance parameters")
		table   = flag.String("table", "all", "which table to run: 81 | 82 | abl | par | bb | relax | solver | all")
		workers = flag.Int("workers", 0, "worker goroutines for the parallel engine rows (0 = GOMAXPROCS)")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON results on stdout instead of text tables")
	)
	flag.Parse()

	// Row failures are recorded, not fatal mid-run: in -json mode the
	// report (with its Error fields populated) must still reach stdout
	// before the non-zero exit, so CI archives the partial artifact
	// instead of an empty file.
	var reports []experiments.JSONReport
	failed := false
	run := func(title string, fams []experiments.Family) {
		rows := experiments.RunAll(fams)
		if *jsonOut {
			reports = append(reports, experiments.ReportJSON(title, rows))
		} else {
			fmt.Println(experiments.Render(title, rows))
		}
		for _, r := range rows {
			if r.Err != nil {
				failed = true
				log.Printf("row %s failed: %v", r.Family.ID, r.Err)
			}
		}
	}
	tables := map[string]func(){
		"81": func() {
			run("Table 8.1 — combined complexity (measured scaling)", experiments.Table81(*quick))
		},
		"82": func() {
			run("Table 8.2 — data complexity (measured scaling)", experiments.Table82(*quick))
		},
		"abl": func() {
			run("Ablations (design choices)", experiments.Ablations(*quick))
		},
		"par": func() {
			run("Engine comparison — serial vs parallel+incremental", experiments.EngineRows(*quick, *workers))
		},
		"bb": func() {
			run("Engine comparison — branch-and-bound vs exhaustive", experiments.BoundRows(*quick))
		},
		"relax": func() {
			run("Engine comparison — QRPP re-solve loop vs incremental session", experiments.RelaxRows(*quick))
		},
		"solver": func() {
			run("Engine comparison — branch-and-bound vs pseudo-Boolean backend", experiments.SolverRows(*quick))
		},
	}
	switch *table {
	case "all":
		for _, id := range []string{"81", "82", "abl", "par", "bb", "relax", "solver"} {
			tables[id]()
		}
	default:
		f, ok := tables[*table]
		if !ok {
			log.Fatalf("unknown table %q", *table)
		}
		f()
	}
	if *jsonOut {
		out, err := experiments.MarshalReports(reports)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, '\n')
		if _, err := os.Stdout.Write(out); err != nil {
			log.Fatal(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}
