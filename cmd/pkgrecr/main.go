// Command pkgrecr is the package recommendation fleet router: it fronts
// a set of pkgrecd nodes behind the exact single-daemon wire API
// (internal/cluster.Router implements the same serve.Service interface
// a daemon does, and this command wraps it in the same serve.NewHandler
// pkgrecd uses). Clients talk to pkgrecr as if it were one pkgrecd —
// same endpoints, same JSON, same error taxonomy — and the router
// partitions collections across the fleet by rendezvous hashing,
// replicates them over the nodes' WAL streams, splits big solves into
// candidate-space shards merged at the router, and fails requests over
// past unhealthy nodes. See docs/operations.md ("Running a fleet").
//
//	pkgrecr -addr :8090 \
//	    -node http://10.0.0.1:8080 -node http://10.0.0.2:8080 \
//	    -node http://10.0.0.3:8080 \
//	    -replicas 2 -shard travel=3
//
// GET /metrics on pkgrecr exposes the router's pkgrecr_* series (node
// health, failovers, shard merges, replication cursors); each node keeps
// its own pkgrec_* series.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("pkgrecr: ")
	var (
		addr      = flag.String("addr", ":8090", "listen address")
		replicas  = flag.Int("replicas", 1, "replica-set size per collection (clamped to the fleet size)")
		threshold = flag.Int("fail-threshold", 3, "consecutive failures marking a node down")
		timeout   = flag.Duration("node-timeout", 0, "per-node HTTP client timeout (0 = none; solves carry their own deadlines)")
		nodeURLs  []string
		shards    = map[string]int{}
	)
	flag.Func("node", "pkgrecd base URL to route to (repeatable, order-insensitive)", func(v string) error {
		nodeURLs = append(nodeURLs, v)
		return nil
	})
	flag.Func("shard", "collection to answer via sharded fan-out, as name=width (repeatable)", func(v string) error {
		name, width, ok := strings.Cut(v, "=")
		w, err := strconv.Atoi(width)
		if !ok || name == "" || err != nil || w < 2 {
			return errors.New("want name=width with width >= 2")
		}
		shards[name] = w
		return nil
	})
	flag.Parse()
	if len(nodeURLs) == 0 {
		log.Fatal("need at least one -node")
	}

	nodes := make([]cluster.Node, 0, len(nodeURLs))
	for _, u := range nodeURLs {
		c := serve.NewClient(u)
		if *timeout > 0 {
			c.HTTPClient = &http.Client{Timeout: *timeout}
		}
		// The URL is the placement identity: keep node URLs stable
		// across router restarts or collections move homes.
		nodes = append(nodes, cluster.Node{Name: u, Svc: c})
	}
	router, err := cluster.New(cluster.Options{
		Nodes:         nodes,
		Replicas:      *replicas,
		ShardSolves:   shards,
		FailThreshold: *threshold,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("routing %d nodes, %d replica(s) per collection, %d sharded collection(s)",
		len(nodes), *replicas, len(shards))

	hs := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewHandler(router),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("listening on %s", *addr)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	st := router.RouterStats()
	log.Printf("routed: %d fan-out solves (%d partials merged), %d failovers, %d replica syncs, %d fingerprint mismatches",
		st.FanoutSolves, st.MergedPartials, st.Failovers, st.ReplicaSyncs, st.ReplicaFingerprintMismatches)
}
