// Command pkgrec runs package recommendation problems from JSON
// specifications:
//
//	pkgrec -db db.json -spec problem.json -op topk
//
// Operations: topk (FRP), maxbound (MBP), count (CPP, uses spec.bound),
// exists (k valid packages rated >= bound?), answer (just evaluate Q).
// The database format is the internal/relation JSON codec; the spec format
// is pkgrec.ProblemSpec (queries in the textual syntax of internal/parser).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	pkgrec "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pkgrec: ")
	var (
		dbPath    = flag.String("db", "", "database JSON file")
		specPath  = flag.String("spec", "", "problem specification JSON file")
		op        = flag.String("op", "topk", "operation: topk | maxbound | count | exists | answer | relax | adjust")
		relaxPath = flag.String("relax", "", "relaxation specification JSON file (op=relax)")
		extraPath = flag.String("extra", "", "extra item collection D' JSON file (op=adjust)")
		adjPath   = flag.String("adjust", "", "adjustment specification JSON file (op=adjust)")
	)
	flag.Parse()
	if *dbPath == "" || *specPath == "" {
		log.Fatal("both -db and -spec are required")
	}

	dbFile, err := os.Open(*dbPath)
	if err != nil {
		log.Fatal(err)
	}
	defer dbFile.Close()
	db, err := readDatabase(dbFile)
	if err != nil {
		log.Fatalf("loading database: %v", err)
	}

	raw, err := os.ReadFile(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	var spec pkgrec.ProblemSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		log.Fatalf("parsing spec: %v", err)
	}
	prob, err := spec.Build(db)
	if err != nil {
		log.Fatalf("building problem: %v", err)
	}

	switch *op {
	case "answer":
		ans, err := prob.Q.Eval(db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q(D): %d items\n%v\n", ans.Len(), ans)
	case "topk":
		sel, ok, err := pkgrec.FindTopK(prob)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Println("no top-k selection exists")
			os.Exit(2)
		}
		for i, n := range sel {
			fmt.Printf("package #%d (val %g, cost %g): %v\n",
				i+1, prob.Val.Eval(n), prob.Cost.Eval(n), n)
		}
	case "maxbound":
		b, ok, err := pkgrec.MaxBound(prob)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Println("no top-k selection exists; no bound")
			os.Exit(2)
		}
		fmt.Printf("maximum bound B = %g\n", b)
	case "count":
		n, err := pkgrec.CountValid(prob, spec.Bound)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("valid packages rated >= %g: %d\n", spec.Bound, n)
	case "exists":
		ok, err := prob.ExistsKValid(prob.K, spec.Bound)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d valid packages rated >= %g exist: %v\n", prob.K, spec.Bound, ok)
		if !ok {
			os.Exit(2)
		}
	case "relax":
		if *relaxPath == "" {
			log.Fatal("-relax spec file required for op=relax")
		}
		raw, err := os.ReadFile(*relaxPath)
		if err != nil {
			log.Fatal(err)
		}
		var rs pkgrec.RelaxSpec
		if err := json.Unmarshal(raw, &rs); err != nil {
			log.Fatalf("parsing relax spec: %v", err)
		}
		inst, err := rs.Build(prob)
		if err != nil {
			log.Fatal(err)
		}
		rel, ok, err := pkgrec.RelaxQuery(inst)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Printf("no relaxation within gap budget %g\n", rs.GapBudget)
			os.Exit(2)
		}
		fmt.Printf("minimal relaxation gap %g\nrelaxed query:\n%s\n", rel.Gap, rel.Query)
	case "adjust":
		if *extraPath == "" || *adjPath == "" {
			log.Fatal("-extra and -adjust files required for op=adjust")
		}
		ef, err := os.Open(*extraPath)
		if err != nil {
			log.Fatal(err)
		}
		defer ef.Close()
		extra, err := readDatabase(ef)
		if err != nil {
			log.Fatalf("loading extra collection: %v", err)
		}
		raw, err := os.ReadFile(*adjPath)
		if err != nil {
			log.Fatal(err)
		}
		var as pkgrec.AdjustSpec
		if err := json.Unmarshal(raw, &as); err != nil {
			log.Fatalf("parsing adjust spec: %v", err)
		}
		delta, ok, err := pkgrec.AdjustItems(as.Build(prob, extra))
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Printf("no adjustment within k' = %d\n", as.KPrime)
			os.Exit(2)
		}
		fmt.Printf("minimal adjustment (|delta| = %d): %v\n", delta.Size(), delta)
	default:
		log.Fatalf("unknown operation %q", *op)
	}
}

func readDatabase(f *os.File) (*pkgrec.Database, error) {
	db := pkgrec.NewDatabase()
	dec := json.NewDecoder(f)
	if err := dec.Decode(db); err != nil {
		return nil, err
	}
	return db, nil
}
