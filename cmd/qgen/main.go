// Command qgen generates the synthetic workloads of internal/gen as JSON
// databases on stdout:
//
//	qgen -workload travel -seed 7 -n 30 -m 24 > travel.json
//	qgen -workload courses -seed 21 -n 10 -m 2 > courses.json
//	qgen -workload team -seed 5 -n 12 -rate 0.15 > team.json
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/gen"
	"repro/internal/relation"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qgen: ")
	var (
		workload = flag.String("workload", "travel", "travel | courses | team")
		seed     = flag.Int64("seed", 1, "generator seed")
		n        = flag.Int("n", 20, "primary size (flights / courses / experts)")
		m        = flag.Int("m", 15, "secondary size (POIs / max prerequisites)")
		rate     = flag.Float64("rate", 0.2, "conflict rate (team workload)")
	)
	flag.Parse()

	var db *relation.Database
	switch *workload {
	case "travel":
		db = gen.Travel(*seed, *n, *m)
	case "courses":
		db = gen.Courses(*seed, *n, *m)
	case "team":
		db = gen.Team(*seed, *n, *rate)
	default:
		log.Fatalf("unknown workload %q", *workload)
	}
	if err := db.WriteJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
