package main

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
)

// samplePool with -relax 0 must be the historical pool, item for item:
// the weighting flag cannot perturb default runs (CI replays them and
// compares reports across versions).
func TestSamplePoolDefaultIsUnweighted(t *testing.T) {
	db := experiments.WorkloadDB(24)
	got, err := samplePool(rand.New(rand.NewSource(7)), 24, db, experiments.WorkloadOps, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.SampleWorkload(rand.New(rand.NewSource(7)), 24, db, experiments.WorkloadOps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pool sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Op != want[i].Op {
			t.Fatalf("item %d differs: %s vs %s", i, got[i].Op, want[i].Op)
		}
	}
}

// A weighted pool must hold the requested relaxation fraction, drawn from
// the relaxation ops, with the remainder from the rest of the mix.
func TestSamplePoolRelaxFraction(t *testing.T) {
	db := experiments.WorkloadDB(24)
	pool, err := samplePool(rand.New(rand.NewSource(8)), 40, db, experiments.WorkloadOps, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 40 {
		t.Fatalf("pool size %d, want 40", len(pool))
	}
	relaxed := 0
	for _, it := range pool {
		if isRelaxOp(it.Op) {
			relaxed++
		}
	}
	if relaxed != 20 {
		t.Fatalf("%d relaxation items, want 20", relaxed)
	}

	// An ops filter of only relaxation ops degenerates cleanly: the whole
	// pool is relaxation traffic regardless of the fraction.
	pool, err = samplePool(rand.New(rand.NewSource(9)), 10, db, experiments.WorkloadRelaxOps, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range pool {
		if !isRelaxOp(it.Op) {
			t.Fatalf("item %d: op %s in a relax-only pool", i, it.Op)
		}
	}
}

func TestIsRelaxOp(t *testing.T) {
	for _, op := range experiments.WorkloadRelaxOps {
		if !isRelaxOp(op) {
			t.Errorf("isRelaxOp(%q) = false", op)
		}
	}
	for _, op := range []string{"topk", "count", "exists", "maxbound", "decide", ""} {
		if isRelaxOp(op) {
			t.Errorf("isRelaxOp(%q) = true", op)
		}
	}
}

// summarize/pct back every latency line in the report: nearest-rank
// percentiles over the sorted samples, empty input summarizing to zero.
func TestSummarizePercentiles(t *testing.T) {
	if got := summarize(nil); got.Count != 0 || got.Max != 0 {
		t.Fatalf("empty summary = %+v", got)
	}
	durs := make([]time.Duration, 100)
	for i := range durs {
		durs[i] = time.Duration(i+1) * time.Millisecond
	}
	got := summarize(durs)
	if got.Count != 100 || got.P50 != 50 || got.P95 != 95 || got.P99 != 99 || got.Max != 100 {
		t.Fatalf("summarize(1..100ms) = %+v", got)
	}
}

// The -cluster topology end to end: spawnFleet's router answers the
// replay loop that main drives, with churn racing the fan-outs, zero
// errors and zero replica divergence.
func TestRunAgainstFleet(t *testing.T) {
	base, rtr, stop, err := spawnFleet(2, serve.Options{}, "recload")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	ctx := context.Background()
	client := serve.NewClient(base)
	db := experiments.WorkloadDB(20)
	if _, err := client.PutCollection(ctx, "recload", db); err != nil {
		t.Fatal(err)
	}
	pool, err := samplePool(rand.New(rand.NewSource(3)), 8, db, experiments.WorkloadOps, 0)
	if err != nil {
		t.Fatal(err)
	}
	stream := make([]int, 24)
	for i := range stream {
		stream[i] = i % len(pool)
	}
	ch := &churner{client: client, coll: "recload", rel: "poi", mirror: db}
	rep, err := run(ctx, client, "recload", pool, stream, 1, 2, 10*time.Second, false, 8, ch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Errors != 0 || rep.Summary.Items != len(stream) {
		t.Fatalf("fleet replay: %d items, %d errors", rep.Summary.Items, rep.Summary.Errors)
	}
	rep.Summary.Churn = ch.summary()
	if rep.Summary.Churn.Installs != 3 || rep.Summary.Churn.Errors != 0 {
		t.Fatalf("churn through the router: %+v", rep.Summary.Churn)
	}
	rs := rtr.RouterStats()
	if rs.ReplicaSyncs == 0 {
		t.Fatal("churn writes did not replicate")
	}
	if rs.ReplicaFingerprintMismatches != 0 {
		t.Fatalf("replicas diverged %d times", rs.ReplicaFingerprintMismatches)
	}
	if st, err := client.Stats(ctx); err == nil {
		rep.Server = st
	}
	rep.Cluster = &rs
	rep.Config = config{N: len(stream), Batch: 1, Concurrency: 2, Cluster: 2}
	render(rep)
}

func TestPBOCapable(t *testing.T) {
	for _, op := range []string{serve.OpTopK, serve.OpDecide, serve.OpMaxBound, serve.OpCount, serve.OpExists} {
		if !pboCapable(op) {
			t.Errorf("pboCapable(%q) = false", op)
		}
	}
	for _, op := range []string{serve.OpRelax, "relaxplan", "adjust", ""} {
		if pboCapable(op) {
			t.Errorf("pboCapable(%q) = true", op)
		}
	}
}

func TestIsShed(t *testing.T) {
	if isShed(errors.New("plain")) {
		t.Error("plain error classified as shed")
	}
	if !isShed(&serve.APIError{Status: 429}) {
		t.Error("429 APIError not classified as shed")
	}
}
