package main

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/experiments"
)

// samplePool with -relax 0 must be the historical pool, item for item:
// the weighting flag cannot perturb default runs (CI replays them and
// compares reports across versions).
func TestSamplePoolDefaultIsUnweighted(t *testing.T) {
	db := experiments.WorkloadDB(24)
	got, err := samplePool(rand.New(rand.NewSource(7)), 24, db, experiments.WorkloadOps, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.SampleWorkload(rand.New(rand.NewSource(7)), 24, db, experiments.WorkloadOps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pool sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Op != want[i].Op {
			t.Fatalf("item %d differs: %s vs %s", i, got[i].Op, want[i].Op)
		}
	}
}

// A weighted pool must hold the requested relaxation fraction, drawn from
// the relaxation ops, with the remainder from the rest of the mix.
func TestSamplePoolRelaxFraction(t *testing.T) {
	db := experiments.WorkloadDB(24)
	pool, err := samplePool(rand.New(rand.NewSource(8)), 40, db, experiments.WorkloadOps, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 40 {
		t.Fatalf("pool size %d, want 40", len(pool))
	}
	relaxed := 0
	for _, it := range pool {
		if isRelaxOp(it.Op) {
			relaxed++
		}
	}
	if relaxed != 20 {
		t.Fatalf("%d relaxation items, want 20", relaxed)
	}

	// An ops filter of only relaxation ops degenerates cleanly: the whole
	// pool is relaxation traffic regardless of the fraction.
	pool, err = samplePool(rand.New(rand.NewSource(9)), 10, db, experiments.WorkloadRelaxOps, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range pool {
		if !isRelaxOp(it.Op) {
			t.Fatalf("item %d: op %s in a relax-only pool", i, it.Op)
		}
	}
}

func TestIsRelaxOp(t *testing.T) {
	for _, op := range experiments.WorkloadRelaxOps {
		if !isRelaxOp(op) {
			t.Errorf("isRelaxOp(%q) = false", op)
		}
	}
	for _, op := range []string{"topk", "count", "exists", "maxbound", "decide", ""} {
		if isRelaxOp(op) {
			t.Errorf("isRelaxOp(%q) = true", op)
		}
	}
}

// summarize/pct back every latency line in the report: nearest-rank
// percentiles over the sorted samples, empty input summarizing to zero.
func TestSummarizePercentiles(t *testing.T) {
	if got := summarize(nil); got.Count != 0 || got.Max != 0 {
		t.Fatalf("empty summary = %+v", got)
	}
	durs := make([]time.Duration, 100)
	for i := range durs {
		durs[i] = time.Duration(i+1) * time.Millisecond
	}
	got := summarize(durs)
	if got.Count != 100 || got.P50 != 50 || got.P95 != 95 || got.P99 != 99 || got.Max != 100 {
		t.Fatalf("summarize(1..100ms) = %+v", got)
	}
}
