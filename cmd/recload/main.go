// Command recload is the serving-layer traffic generator: it replays a
// mixed recommendation workload (topk / count / exists / maxbound / decide
// / relax requests drawn from the experiment families) against a live
// pkgrecd and reports throughput and latency percentiles — the measured
// baseline every serving-layer change is judged against.
//
//	recload                          # spawn an in-process daemon and load it
//	recload -addr http://host:8080   # drive an external pkgrecd
//	recload -batch 32 -c 8 -n 2048   # /v1/batch with 32 items per call, 8 workers
//	recload -batch 1                 # one /v1/solve per item (no batching)
//	recload -hit 0.9                 # ~90% of items repeat an earlier one
//	recload -json > BENCH_load.json  # machine-readable report (CI archives it)
//
// recload always generates its own collection (experiments.WorkloadDB) and
// uploads it to the daemon under -collection before the run, so decide
// selections computed locally stay valid remotely and runs are
// reproducible across machines. With -addr unset it spawns the serving
// stack in-process behind a real HTTP listener — the same Server, Handler
// and Client pkgrecd wires together — so a single command measures the
// full wire path with zero setup.
//
// The -hit flag steers the *offered* repeat ratio: each item repeats an
// already-issued request with probability -hit, and draws a fresh one from
// the distinct pool otherwise. The pool auto-sizes to min(-n, the variant
// space) so fresh draws stay distinct; an explicit -distinct caps it, and
// once fresh draws exhaust the pool they cycle — so the *realised* offered
// repeat ratio (reported as offeredRepeatRatio) can exceed -hit. The
// daemon's realised hit rate (from /v1/stats) tracks the offered ratio
// from below — first occurrences always miss, and only cache-consulting
// items count.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recload: ")
	var (
		addr       = flag.String("addr", "", "daemon base URL (empty = spawn an in-process daemon)")
		collection = flag.String("collection", "recload", "collection name to upload the workload database under")
		n          = flag.Int("n", 256, "total items (requests) to issue")
		batch      = flag.Int("batch", 8, "items per /v1/batch call (1 = one /v1/solve per item)")
		conc       = flag.Int("c", 4, "concurrent client connections")
		hit        = flag.Float64("hit", 0.5, "offered cache-hit ratio in [0, 1): probability an item repeats an earlier one")
		distinct   = flag.Int("distinct", 0, "distinct request pool size (0 = auto: min(-n, variant space))")
		nPOI       = flag.Int("npoi", 60, "workload database size (points of interest)")
		opsFlag    = flag.String("ops", "", "comma-separated op filter (default: all of topk,count,exists,maxbound,decide,relax)")
		seed       = flag.Int64("seed", 1, "workload and repetition seed")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-call (whole-batch) deadline")
		noCache    = flag.Bool("nocache", false, "bypass the daemon's result cache (cold-path measurement; batch dedup still applies)")
		jsonOut    = flag.Bool("json", false, "emit a machine-readable JSON report on stdout instead of text")
	)
	flag.Parse()
	if *batch < 1 || *n < 1 || *conc < 1 || *hit < 0 || *hit >= 1 {
		log.Fatal("want -batch >= 1, -n >= 1, -c >= 1 and 0 <= -hit < 1")
	}

	rng := rand.New(rand.NewSource(*seed))
	db := experiments.WorkloadDB(*nPOI)
	ops := experiments.WorkloadOps
	if *opsFlag != "" {
		ops = strings.Split(*opsFlag, ",")
	}
	poolSize := *distinct
	if poolSize <= 0 {
		poolSize = min(*n, experiments.WorkloadVariants*len(ops))
	}
	pool, err := experiments.SampleWorkload(rng, poolSize, db, ops)
	if err != nil {
		log.Fatal(err)
	}

	base := *addr
	if base == "" {
		srv, stop, err := spawn()
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		base = srv
		if !*jsonOut {
			log.Printf("spawned in-process daemon at %s", base)
		}
	}
	ctx := context.Background()
	client := serve.NewClient(strings.TrimRight(base, "/"))
	if _, err := client.PutCollection(ctx, *collection, db); err != nil {
		log.Fatalf("uploading workload collection: %v", err)
	}

	// The replay stream: pool indices, repeats injected per -hit; fresh
	// draws cycle a capped pool (realised repeats then exceed -hit, and
	// the report says so). Built up front so every worker draws from one
	// deterministic schedule.
	stream := make([]int, *n)
	issued := make([]int, 0, *n)
	seen := make(map[int]bool, len(pool))
	next := 0
	for i := range stream {
		if len(issued) > 0 && rng.Float64() < *hit {
			stream[i] = issued[rng.Intn(len(issued))]
		} else {
			stream[i] = next % len(pool)
			next++
		}
		issued = append(issued, stream[i])
		seen[stream[i]] = true
	}
	offeredRepeats := float64(*n-len(seen)) / float64(*n)

	rep, err := run(ctx, client, *collection, pool, stream, *batch, *conc, *timeout, *noCache)
	if err != nil {
		log.Fatal(err)
	}
	rep.Config = config{
		Addr: base, Collection: *collection, N: *n, Batch: *batch,
		Concurrency: *conc, HitRatio: *hit, Distinct: poolSize,
		NPOI: *nPOI, Ops: ops, Seed: *seed, NoCache: *noCache,
	}
	rep.Summary.OfferedRepeatRatio = offeredRepeats
	if st, err := client.Stats(ctx); err == nil {
		rep.Server = st
	}

	if *jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, '\n')
		if _, err := os.Stdout.Write(out); err != nil {
			log.Fatal(err)
		}
	} else {
		render(rep)
	}
	if rep.Summary.Errors > 0 {
		os.Exit(1)
	}
}

// spawn starts the serving stack in-process on a loopback listener: the
// same Server + Handler pkgrecd runs, behind a real HTTP server, so the
// measured path includes the full wire protocol.
func spawn() (base string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{
		Handler:           serve.NewServer(serve.Options{}).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = hs.Close() }, nil
}

// config echoes the run parameters into the report.
type config struct {
	Addr        string   `json:"addr"`
	Collection  string   `json:"collection"`
	N           int      `json:"n"`
	Batch       int      `json:"batch"`
	Concurrency int      `json:"concurrency"`
	HitRatio    float64  `json:"hitRatio"`
	Distinct    int      `json:"distinct"`
	NPOI        int      `json:"npoi"`
	Ops         []string `json:"ops,omitempty"`
	Seed        int64    `json:"seed"`
	NoCache     bool     `json:"noCache,omitempty"`
}

// latency is the percentile summary over per-call latencies, in
// milliseconds (nearest-rank over all HTTP calls of the run).
type latency struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// summary is the run's aggregate outcome. OfferedRepeatRatio is the
// realised fraction of stream items that repeated an earlier one — it
// meets -hit when the pool is large enough and exceeds it when fresh
// draws had to cycle a capped pool.
type summary struct {
	HTTPRequests       int     `json:"httpRequests"`
	Items              int     `json:"items"`
	Errors             int     `json:"errors"`
	Seconds            float64 `json:"seconds"`
	ItemsPerSec        float64 `json:"itemsPerSec"`
	ReqPerSec          float64 `json:"reqPerSec"`
	OfferedRepeatRatio float64 `json:"offeredRepeatRatio"`
	LatencyMS          latency `json:"latencyMs"`
}

// report is the machine-readable shape `recload -json` emits — the serving
// counterpart of recbench's BENCH_*.json artifacts, archived by CI as
// BENCH_load.json.
type report struct {
	Title   string       `json:"title"`
	Config  config       `json:"config"`
	Summary summary      `json:"summary"`
	Server  *serve.Stats `json:"server,omitempty"`
}

// run replays the stream: conc workers issue calls of batchSize items each
// (batchSize 1 → /v1/solve) and record per-call latency.
func run(ctx context.Context, client *serve.Client, collection string,
	pool []experiments.WorkloadItem, stream []int, batchSize, conc int,
	timeout time.Duration, noCache bool) (*report, error) {

	type call struct{ idxs []int }
	calls := make([]call, 0, (len(stream)+batchSize-1)/batchSize)
	for at := 0; at < len(stream); at += batchSize {
		end := min(at+batchSize, len(stream))
		calls = append(calls, call{idxs: stream[at:end]})
	}

	item := func(i int) serve.BatchItem {
		w := pool[i]
		return serve.BatchItem{Op: w.Op, Spec: w.Spec, Selection: w.Selection, Relax: w.Relax}
	}

	jobs := make(chan call)
	durs := make([]time.Duration, len(calls))
	var pos int
	var mu sync.Mutex
	var items, errs int
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				callStart := time.Now()
				var okItems, badItems int
				if batchSize == 1 {
					req := item(c.idxs[0]).Request(collection)
					req.TimeoutMS = timeout.Milliseconds()
					req.NoCache = noCache
					if _, err := client.Solve(ctx, req); err != nil {
						badItems = 1
					} else {
						okItems = 1
					}
				} else {
					breq := serve.BatchRequest{Collection: collection, TimeoutMS: timeout.Milliseconds(), NoCache: noCache}
					for _, i := range c.idxs {
						breq.Items = append(breq.Items, item(i))
					}
					resp, err := client.SolveBatch(ctx, breq)
					if err != nil {
						badItems = len(c.idxs)
					} else {
						for _, ir := range resp.Items {
							if ir.Error != "" {
								badItems++
							} else {
								okItems++
							}
						}
					}
				}
				d := time.Since(callStart)
				mu.Lock()
				durs[pos] = d
				pos++
				items += okItems
				errs += badItems
				mu.Unlock()
			}
		}()
	}
	for _, c := range calls {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start).Seconds()

	ms := make([]float64, len(durs))
	for i, d := range durs {
		ms[i] = float64(d) / float64(time.Millisecond)
	}
	sort.Float64s(ms)
	rep := &report{
		Title: "recload",
		Summary: summary{
			HTTPRequests: len(calls),
			Items:        items,
			Errors:       errs,
			Seconds:      wall,
			ItemsPerSec:  float64(items) / wall,
			ReqPerSec:    float64(len(calls)) / wall,
			LatencyMS: latency{
				Count: len(ms),
				P50:   pct(ms, 0.50),
				P95:   pct(ms, 0.95),
				P99:   pct(ms, 0.99),
				Max:   ms[len(ms)-1],
			},
		},
	}
	return rep, nil
}

// pct reads the nearest-rank percentile from sorted samples.
func pct(sorted []float64, p float64) float64 {
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func render(rep *report) {
	s := rep.Summary
	fmt.Printf("recload: %d items in %.2fs over %d HTTP calls (batch=%d, c=%d, offered repeats=%.2f): %.0f items/s, %.0f req/s, %d errors\n",
		s.Items+s.Errors, s.Seconds, s.HTTPRequests, rep.Config.Batch,
		rep.Config.Concurrency, s.OfferedRepeatRatio, s.ItemsPerSec, s.ReqPerSec, s.Errors)
	fmt.Printf("latency per HTTP call (ms): p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
		s.LatencyMS.P50, s.LatencyMS.P95, s.LatencyMS.P99, s.LatencyMS.Max)
	if st := rep.Server; st != nil {
		fmt.Printf("server: hitRate=%.2f coalesced=%d batches=%d batchItems=%d batchDeduped=%d errors=%d\n",
			st.HitRate, st.Coalesced, st.Batches, st.BatchItems, st.BatchDeduped, st.Errors)
		fmt.Printf("engine: nodes=%d packages=%d pruned=%d boundEvals=%d; server p50=%.2fms p99=%.2fms\n",
			st.EngineNodes, st.EnginePackages, st.EnginePruned, st.EngineBoundEvals,
			st.Latency.P50, st.Latency.P99)
	}
}
