// Command recload is the serving-layer traffic generator: it replays a
// mixed recommendation workload (topk / count / exists / maxbound / decide
// / relax requests drawn from the experiment families) against a live
// pkgrecd and reports throughput and latency percentiles — the measured
// baseline every serving-layer change is judged against.
//
//	recload                          # spawn an in-process daemon and load it
//	recload -addr http://host:8080   # drive an external pkgrecd
//	recload -batch 32 -c 8 -n 2048   # /v1/batch with 32 items per call, 8 workers
//	recload -batch 1                 # one /v1/solve per item (no batching)
//	recload -hit 0.9                 # ~90% of items repeat an earlier one
//	recload -churn 32                # one delta install per 32 items
//	recload -churn 32 -churnrel poi  # churn the relation the queries read
//	recload -churn 32 -churnswap     # same mutations as full collection swaps
//	recload -relax 0.5               # half the pool is relax/relaxplan traffic
//	recload -pbo 0.5                 # half the eligible pool runs backend "pbo"
//	recload -cluster 3               # 3-node in-process fleet behind a cluster router
//	recload -json > BENCH_load.json  # machine-readable report (CI archives it)
//
// recload always generates its own collection (experiments.WorkloadDB) and
// uploads it to the daemon under -collection before the run, so decide
// selections computed locally stay valid remotely and runs are
// reproducible across machines. With -addr unset it spawns the serving
// stack in-process behind a real HTTP listener — the same Server, Handler
// and Client pkgrecd wires together — so a single command measures the
// full wire path with zero setup.
//
// The -hit flag steers the *offered* repeat ratio: each item repeats an
// already-issued request with probability -hit, and draws a fresh one from
// the distinct pool otherwise. The pool auto-sizes to min(-n, the variant
// space) so fresh draws stay distinct; an explicit -distinct caps it, and
// once fresh draws exhaust the pool they cycle — so the *realised* offered
// repeat ratio (reported as offeredRepeatRatio in both the text and JSON
// reports) can exceed -hit. The daemon's realised hit rate (from
// /v1/stats) tracks the offered ratio from below — first occurrences
// always miss, and only cache-consulting items count.
//
// The -churn flag interleaves collection mutations into the replay: after
// every -churn items one experiments.ChurnDelta installs (alternating
// upsert/delete of a synthetic tuple) through POST
// /v1/collections/{name}/delta — or, with -churnswap, as a full PUT of the
// evolving collection, the pre-delta way. -churnrel picks the mutated
// relation: "flight" (default) churns a relation the sampled queries never
// read, so warm cache entries and prepared problems survive every install;
// "poi" churns the relation they all read, invalidating the warm state
// each time. The report carries install counts and latencies next to the
// serve-side deltas/deltaItems/hitRate counters, so one run quantifies
// delta installs against full swaps.
//
// The -relax flag reshapes the traffic profile toward relaxation: that
// fraction of the distinct pool is drawn from the relaxation ops (op
// "relax" and the ranked op "relaxplan", experiments.WorkloadRelaxOps)
// and the rest from the remaining mix. The report then carries a separate
// client-observed relaxation hit rate (relaxItems/relaxHits in JSON) —
// the fraction of relaxation answers served from the daemon's cache,
// which under churn measures directly whether relax entries survive
// deltas to relations their gap levels never read. With -relax 0 (the
// default) the pool is the unweighted mix and reports stay comparable
// with earlier versions.
//
// The -pbo flag routes traffic to the pseudo-Boolean backend: each pool
// item on a pbo-capable op (topk / count / exists / maxbound / decide —
// the relaxation ops have no PB form) is tagged `"backend":"pbo"` with
// that probability. Tagging happens once, at pool construction, so a
// repeated item repeats with its backend — backend participates in the
// daemon's cache key, and per-request flapping would make every repeat a
// miss. The report then carries the offered pbo item count next to the
// daemon's pboSolves/pboConflicts/pboPropagations counters, so one run
// compares the two backends under an identical mixed workload. With
// -pbo 0 (the default) no item is tagged and reports stay comparable
// with earlier versions.
//
// The -cluster flag swaps the single in-process daemon for an in-process
// fleet: N pkgrecd nodes, each with its own listener and durability
// directory, behind one cluster router serving the same public API the
// client already speaks. The collection is fully replicated across the
// fleet and its shardable solves fan out N ways, so one run drives
// shard-merged solves, synchronous WAL-stream replication and per-sync
// fingerprint consistency checks together. The JSON report gains a
// `cluster` block (the router's own counters: fanoutSolves,
// mergedPartials, failovers, replicaSyncs, replicaFingerprintMismatches,
// per-node health) and the exit code turns red on any replica
// fingerprint mismatch — CI gates on `.cluster.mergedPartials > 0` and
// `.cluster.replicaFingerprintMismatches == 0`.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/relation"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recload: ")
	var (
		addr       = flag.String("addr", "", "daemon base URL (empty = spawn an in-process daemon)")
		collection = flag.String("collection", "recload", "collection name to upload the workload database under")
		n          = flag.Int("n", 256, "total items (requests) to issue")
		batch      = flag.Int("batch", 8, "items per /v1/batch call (1 = one /v1/solve per item)")
		conc       = flag.Int("c", 4, "concurrent client connections")
		hit        = flag.Float64("hit", 0.5, "offered cache-hit ratio in [0, 1): probability an item repeats an earlier one")
		distinct   = flag.Int("distinct", 0, "distinct request pool size (0 = auto: min(-n, variant space))")
		nPOI       = flag.Int("npoi", 60, "workload database size (points of interest)")
		opsFlag    = flag.String("ops", "", "comma-separated op filter (default: all of topk,count,exists,maxbound,decide,relax)")
		seed       = flag.Int64("seed", 1, "workload and repetition seed")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-call (whole-batch) deadline")
		noCache    = flag.Bool("nocache", false, "bypass the daemon's result cache (cold-path measurement; batch dedup still applies)")
		relaxFrac  = flag.Float64("relax", 0, "fraction of the distinct pool drawn from relaxation ops (relax + relaxplan) in [0, 1]; 0 = unweighted mix")
		pboFrac    = flag.Float64("pbo", 0, `probability a pbo-capable pool item (topk/count/exists/maxbound/decide) is tagged backend "pbo", in [0, 1]`)
		churn      = flag.Int("churn", 0, "interleave one collection mutation per this many items (0 = no churn)")
		churnRel   = flag.String("churnrel", "flight", "relation the churn mutates (flight = unread by the queries, poi = read by all)")
		churnSwap  = flag.Bool("churnswap", false, "install churn as full collection PUT swaps instead of deltas")
		jsonOut    = flag.Bool("json", false, "emit a machine-readable JSON report on stdout instead of text")
		maxConc    = flag.Int("max-concurrent", 0, "in-process daemon: solve pool size (0 = GOMAXPROCS); overload runs shrink it below -c")
		maxQueue   = flag.Int("max-queue", 0, "in-process daemon: per-collection admission queue bound before 429s (0 = 16x pool)")
		shedAfter  = flag.Duration("shed-threshold", 0, "in-process daemon: shed solves whose predicted wait exceeds this (0 = disabled)")
		walDir     = flag.String("wal-dir", "", "in-process daemon: durability directory (delta WAL + snapshots)")
		restart    = flag.Bool("restart", false, "after the run, restart the in-process daemon over -wal-dir and verify the collection recovers to the pre-restart fingerprint")
		clusterN   = flag.Int("cluster", 0, "spawn an in-process fleet of this many pkgrecd nodes behind a cluster router (full replication, solves sharded across all nodes); 0 = single daemon")
	)
	flag.Parse()
	if *batch < 1 || *n < 1 || *conc < 1 || *hit < 0 || *hit >= 1 {
		log.Fatal("want -batch >= 1, -n >= 1, -c >= 1 and 0 <= -hit < 1")
	}
	if *churn < 0 {
		log.Fatal("want -churn >= 0")
	}
	if *relaxFrac < 0 || *relaxFrac > 1 {
		log.Fatal("want 0 <= -relax <= 1")
	}
	if *pboFrac < 0 || *pboFrac > 1 {
		log.Fatal("want 0 <= -pbo <= 1")
	}

	rng := rand.New(rand.NewSource(*seed))
	db := experiments.WorkloadDB(*nPOI)
	ops := experiments.WorkloadOps
	if *opsFlag != "" {
		ops = strings.Split(*opsFlag, ",")
	}
	poolSize := *distinct
	if poolSize <= 0 {
		poolSize = min(*n, experiments.WorkloadVariants*len(ops))
	}
	pool, err := samplePool(rng, poolSize, db, ops, *relaxFrac)
	if err != nil {
		log.Fatal(err)
	}
	// Backend tags are part of the pool, not the stream: a repeated item
	// must repeat with its backend, because backend is part of the daemon's
	// cache key. The -pbo 0 default draws nothing from rng, keeping default
	// replay streams identical to earlier versions.
	if *pboFrac > 0 {
		for i := range pool {
			if pboCapable(pool[i].Op) && rng.Float64() < *pboFrac {
				pool[i].Backend = serve.BackendPBO
			}
		}
	}

	spawnOpts := serve.Options{MaxConcurrent: *maxConc, MaxQueue: *maxQueue, ShedThreshold: *shedAfter}
	if *addr != "" && (*maxConc != 0 || *maxQueue != 0 || *shedAfter != 0 || *walDir != "" || *restart) {
		log.Fatal("-max-concurrent, -max-queue, -shed-threshold, -wal-dir and -restart configure the in-process daemon; they cannot be combined with -addr")
	}
	if *restart && *walDir == "" {
		log.Fatal("-restart needs -wal-dir: a memory-only daemon has nothing to recover from")
	}
	if *clusterN != 0 {
		if *clusterN < 2 {
			log.Fatal("want -cluster >= 2 (a fleet of one is just the default daemon)")
		}
		if *addr != "" || *walDir != "" || *restart {
			log.Fatal("-cluster spawns its own fleet (per-node WAL dirs included); it cannot be combined with -addr, -wal-dir or -restart")
		}
	}
	base := *addr
	var stop func()
	var rtr *cluster.Router
	if base == "" {
		var err error
		if *clusterN > 0 {
			base, rtr, stop, err = spawnFleet(*clusterN, spawnOpts, *collection)
		} else {
			base, stop, err = spawn(spawnOpts, *walDir)
		}
		if err != nil {
			log.Fatal(err)
		}
		defer func() { stop() }()
		if !*jsonOut {
			if rtr != nil {
				log.Printf("spawned in-process %d-node fleet behind router at %s", *clusterN, base)
			} else {
				log.Printf("spawned in-process daemon at %s", base)
			}
		}
	}
	ctx := context.Background()
	client := serve.NewClient(strings.TrimRight(base, "/"))
	if _, err := client.PutCollection(ctx, *collection, db); err != nil {
		log.Fatalf("uploading workload collection: %v", err)
	}

	// The replay stream: pool indices, repeats injected per -hit; fresh
	// draws cycle a capped pool (realised repeats then exceed -hit, and
	// the report says so). Built up front so every worker draws from one
	// deterministic schedule.
	stream := make([]int, *n)
	issued := make([]int, 0, *n)
	seen := make(map[int]bool, len(pool))
	next := 0
	for i := range stream {
		if len(issued) > 0 && rng.Float64() < *hit {
			stream[i] = issued[rng.Intn(len(issued))]
		} else {
			stream[i] = next % len(pool)
			next++
		}
		issued = append(issued, stream[i])
		seen[stream[i]] = true
	}
	offeredRepeats := float64(*n-len(seen)) / float64(*n)

	var ch *churner
	if *churn > 0 {
		if _, err := experiments.ChurnDelta(*churnRel, 0); err != nil {
			log.Fatal(err)
		}
		ch = &churner{client: client, coll: *collection, rel: *churnRel, swap: *churnSwap, mirror: db}
	}

	rep, err := run(ctx, client, *collection, pool, stream, *batch, *conc, *timeout, *noCache, *churn, ch)
	if err != nil {
		log.Fatal(err)
	}
	rep.Config = config{
		Addr: base, Collection: *collection, N: *n, Batch: *batch,
		Concurrency: *conc, HitRatio: *hit, Distinct: poolSize,
		NPOI: *nPOI, Ops: ops, Seed: *seed, NoCache: *noCache,
		RelaxFrac: *relaxFrac, PBOFrac: *pboFrac,
		Churn: *churn, ChurnRel: *churnRel, ChurnSwap: *churnSwap,
		MaxConcurrent: *maxConc, MaxQueue: *maxQueue, ShedThreshold: *shedAfter,
		WALDir: *walDir, Restart: *restart, Cluster: *clusterN,
	}
	rep.Summary.OfferedRepeatRatio = offeredRepeats
	for _, i := range stream {
		if pool[i].Backend == serve.BackendPBO {
			rep.Summary.PBOItems++
		}
	}
	if ch != nil {
		rep.Summary.Churn = ch.summary()
	}
	if st, err := client.Stats(ctx); err == nil {
		rep.Server = st
	}
	if rtr != nil {
		rs := rtr.RouterStats()
		rep.Cluster = &rs
	}
	if *restart {
		rs, stop2, err := restartScenario(ctx, client, *collection, stop, spawnOpts, *walDir)
		if stop2 != nil {
			stop = stop2
		} else {
			stop = func() {}
		}
		if err != nil {
			log.Fatalf("restart scenario: %v", err)
		}
		rep.Restart = rs
	}

	if *jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, '\n')
		if _, err := os.Stdout.Write(out); err != nil {
			log.Fatal(err)
		}
	} else {
		render(rep)
	}
	// Sheds are deliberate back-pressure, not failures; a restart that does
	// not recover the exact pre-restart collection is, and so is any replica
	// whose fingerprint diverged from its primary during the run.
	if rep.Summary.Errors > 0 || (rep.Summary.Churn != nil && rep.Summary.Churn.Errors > 0) ||
		(rep.Restart != nil && !rep.Restart.Match) ||
		(rep.Cluster != nil && rep.Cluster.ReplicaFingerprintMismatches > 0) {
		os.Exit(1)
	}
}

// spawn starts the serving stack in-process on a loopback listener: the
// same Server + Handler pkgrecd runs, behind a real HTTP server, so the
// measured path includes the full wire protocol. A non-empty walDir turns
// on durability (and recovers whatever a previous daemon left there).
func spawn(opts serve.Options, walDir string) (base string, stop func(), err error) {
	srv := serve.NewServer(opts)
	if walDir != "" {
		if err := srv.OpenWAL(serve.WALConfig{Dir: walDir}); err != nil {
			return "", nil, err
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = srv.Close()
		return "", nil, err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = hs.Close(); _ = srv.Close() }, nil
}

// spawnFleet starts a -cluster run's topology in-process: n pkgrecd
// nodes (each with its own listener and its own durability directory, so
// replication runs over the real delta-WAL stream) behind one cluster
// router serving the public API. The collection is fully replicated
// (Replicas = n) and its shardable solves are fanned out n ways, so the
// run exercises fan-out/merge, synchronous replication and fingerprint
// consistency checks at once. The returned stop tears the whole fleet
// down, router first.
func spawnFleet(n int, opts serve.Options, collection string) (base string, rtr *cluster.Router, stop func(), err error) {
	var stops []func()
	stopAll := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	defer func() {
		if err != nil {
			stopAll()
		}
	}()
	nodes := make([]cluster.Node, 0, n)
	for i := 0; i < n; i++ {
		srv := serve.NewServer(opts)
		dir, derr := os.MkdirTemp("", "recload-node-")
		if derr != nil {
			_ = srv.Close()
			return "", nil, nil, derr
		}
		stops = append(stops, func() { _ = os.RemoveAll(dir) })
		if werr := srv.OpenWAL(serve.WALConfig{Dir: dir}); werr != nil {
			_ = srv.Close()
			return "", nil, nil, werr
		}
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			_ = srv.Close()
			return "", nil, nil, lerr
		}
		hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go func() { _ = hs.Serve(ln) }()
		stops = append(stops, func() { _ = hs.Close(); _ = srv.Close() })
		nodes = append(nodes, cluster.Node{
			Name: fmt.Sprintf("node-%d", i),
			Svc:  serve.NewClient("http://" + ln.Addr().String()),
		})
	}
	rtr, err = cluster.New(cluster.Options{
		Nodes:       nodes,
		Replicas:    n,
		ShardSolves: map[string]int{collection: n},
	})
	if err != nil {
		return "", nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	hs := &http.Server{Handler: serve.NewHandler(rtr), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = hs.Serve(ln) }()
	stops = append(stops, func() { _ = hs.Close() })
	return "http://" + ln.Addr().String(), rtr, stopAll, nil
}

// restartSummary reports the -restart scenario: the daemon is bounced
// over its durability directory and the collection must come back as the
// exact pre-restart content.
type restartSummary struct {
	FingerprintBefore string  `json:"fingerprintBefore"`
	FingerprintAfter  string  `json:"fingerprintAfter"`
	Match             bool    `json:"match"`
	Replayed          uint64  `json:"replayed"`
	RecoverMS         float64 `json:"recoverMs"`
}

// restartScenario stops the in-process daemon, spawns a fresh one over
// the same durability directory, and checks the recovered collection
// against the pre-restart fingerprint. It returns the new daemon's stop
// function so the caller can adopt it.
func restartScenario(ctx context.Context, client *serve.Client, coll string,
	stop func(), opts serve.Options, walDir string) (*restartSummary, func(), error) {

	before, err := client.GetCollection(ctx, coll)
	if err != nil {
		return nil, nil, fmt.Errorf("pre-restart collection: %w", err)
	}
	stop()
	start := time.Now()
	base, stop2, err := spawn(opts, walDir)
	if err != nil {
		return nil, nil, fmt.Errorf("respawning daemon: %w", err)
	}
	c2 := serve.NewClient(base)
	after, err := c2.GetCollection(ctx, coll)
	if err != nil {
		return nil, stop2, fmt.Errorf("post-restart collection: %w", err)
	}
	rs := &restartSummary{
		FingerprintBefore: before.Fingerprint,
		FingerprintAfter:  after.Fingerprint,
		Match:             before.Fingerprint == after.Fingerprint,
		RecoverMS:         float64(time.Since(start)) / float64(time.Millisecond),
	}
	if st, err := c2.Stats(ctx); err == nil {
		rs.Replayed = st.WALReplayed
	}
	return rs, stop2, nil
}

// samplePool draws the distinct request pool. With relaxFrac zero it is
// exactly one SampleWorkload call over ops — the historical pool, item for
// item. Otherwise that fraction of the pool comes from the relaxation ops
// and the rest from the remaining mix, shuffled together so the replay
// stream interleaves the two profiles.
func samplePool(rng *rand.Rand, poolSize int, db *relation.Database,
	ops []string, relaxFrac float64) ([]experiments.WorkloadItem, error) {

	if relaxFrac == 0 {
		return experiments.SampleWorkload(rng, poolSize, db, ops)
	}
	baseOps := make([]string, 0, len(ops))
	for _, op := range ops {
		if !isRelaxOp(op) {
			baseOps = append(baseOps, op)
		}
	}
	nRelax := int(float64(poolSize)*relaxFrac + 0.5)
	if nRelax < 1 {
		nRelax = 1
	}
	// Each sub-pool is capped by its own variant space so fresh draws stay
	// distinct (the same cap the auto pool size applies to the whole mix).
	if limit := experiments.WorkloadVariants * len(experiments.WorkloadRelaxOps); nRelax > limit {
		nRelax = limit
	}
	if nRelax > poolSize || len(baseOps) == 0 {
		nRelax = poolSize
	}
	nBase := poolSize - nRelax
	if limit := experiments.WorkloadVariants * len(baseOps); nBase > limit {
		nBase = limit
	}
	pool := make([]experiments.WorkloadItem, 0, nBase+nRelax)
	if nBase > 0 {
		base, err := experiments.SampleWorkload(rng, nBase, db, baseOps)
		if err != nil {
			return nil, err
		}
		pool = append(pool, base...)
	}
	relaxed, err := experiments.SampleWorkload(rng, nRelax, db, experiments.WorkloadRelaxOps)
	if err != nil {
		return nil, err
	}
	pool = append(pool, relaxed...)
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool, nil
}

// pboCapable says whether an op can be served by the pseudo-Boolean
// backend — the ops -pbo may tag (the same set serve.normalizeBackend
// admits for backend "pbo").
func pboCapable(op string) bool {
	switch op {
	case serve.OpTopK, serve.OpDecide, serve.OpMaxBound, serve.OpCount, serve.OpExists:
		return true
	}
	return false
}

// isRelaxOp says whether an op belongs to the relaxation profile — the
// items the separate relax hit rate counts.
func isRelaxOp(op string) bool {
	for _, r := range experiments.WorkloadRelaxOps {
		if op == r {
			return true
		}
	}
	return false
}

// config echoes the run parameters into the report.
type config struct {
	Addr        string   `json:"addr"`
	Collection  string   `json:"collection"`
	N           int      `json:"n"`
	Batch       int      `json:"batch"`
	Concurrency int      `json:"concurrency"`
	HitRatio    float64  `json:"hitRatio"`
	Distinct    int      `json:"distinct"`
	NPOI        int      `json:"npoi"`
	Ops         []string `json:"ops,omitempty"`
	Seed        int64    `json:"seed"`
	NoCache     bool     `json:"noCache,omitempty"`
	RelaxFrac   float64  `json:"relax,omitempty"`
	PBOFrac     float64  `json:"pbo,omitempty"`
	Churn       int      `json:"churn,omitempty"`
	ChurnRel    string   `json:"churnRel,omitempty"`
	ChurnSwap   bool     `json:"churnSwap,omitempty"`
	// Hardening knobs of the in-process daemon (zero when driving an
	// external one).
	MaxConcurrent int           `json:"maxConcurrent,omitempty"`
	MaxQueue      int           `json:"maxQueue,omitempty"`
	ShedThreshold time.Duration `json:"shedThreshold,omitempty"`
	WALDir        string        `json:"walDir,omitempty"`
	Restart       bool          `json:"restart,omitempty"`
	Cluster       int           `json:"cluster,omitempty"`
}

// churner installs the churn mutations: one experiments.ChurnDelta per
// install, as a delta (POST .../delta) or — swap mode — applied to the
// local mirror and PUT wholesale. Installs serialize on the mutex so the
// upsert/delete alternation stays ordered no matter which worker draws the
// install; the lock also guards the mirror and the accounting.
type churner struct {
	client *serve.Client
	coll   string
	rel    string
	swap   bool

	mu     sync.Mutex
	mirror *relation.Database
	next   int
	errs   int
	durs   []time.Duration
}

func (ch *churner) install(ctx context.Context) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	i := ch.next
	ch.next++
	start := time.Now()
	err := func() error {
		d, err := experiments.ChurnDelta(ch.rel, i)
		if err != nil {
			return err
		}
		if ch.swap {
			res, err := ch.mirror.ApplyDelta(d)
			if err != nil {
				return err
			}
			ch.mirror = res.DB
			_, err = ch.client.PutCollection(ctx, ch.coll, ch.mirror)
			return err
		}
		_, err = ch.client.ApplyDelta(ctx, ch.coll, d)
		return err
	}()
	ch.durs = append(ch.durs, time.Since(start))
	if err != nil {
		ch.errs++
	}
}

// churnSummary reports the install side of a churn run.
type churnSummary struct {
	Installs  int     `json:"installs"`
	Mode      string  `json:"mode"` // delta | swap
	Relation  string  `json:"relation"`
	Errors    int     `json:"errors"`
	LatencyMS latency `json:"latencyMs"`
}

func (ch *churner) summary() *churnSummary {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	mode := "delta"
	if ch.swap {
		mode = "swap"
	}
	return &churnSummary{Installs: len(ch.durs), Mode: mode, Relation: ch.rel,
		Errors: ch.errs, LatencyMS: summarize(ch.durs)}
}

// summarize reduces call durations to the report's percentile summary.
func summarize(durs []time.Duration) latency {
	if len(durs) == 0 {
		return latency{}
	}
	ms := make([]float64, len(durs))
	for i, d := range durs {
		ms[i] = float64(d) / float64(time.Millisecond)
	}
	sort.Float64s(ms)
	return latency{
		Count: len(ms),
		P50:   pct(ms, 0.50),
		P95:   pct(ms, 0.95),
		P99:   pct(ms, 0.99),
		Max:   ms[len(ms)-1],
	}
}

// latency is the percentile summary over per-call latencies, in
// milliseconds (nearest-rank over all HTTP calls of the run).
type latency struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// summary is the run's aggregate outcome. Sheds counts items the daemon
// rejected with 429 under admission control — deliberate load-shedding,
// reported apart from Errors so an overload run can require sheds > 0
// with zero failures. OfferedRepeatRatio is the
// realised fraction of stream items that repeated an earlier one — it
// meets -hit when the pool is large enough and exceeds it when fresh
// draws had to cycle a capped pool. RelaxItems/RelaxHits split out the
// relaxation traffic (op relax + relaxplan): how many such items were
// answered and how many of those answers the wire reported as
// cache-served, with RelaxHitRate their ratio — the client-observed
// measure of whether relax cache entries survive across the run.
// PBOItems counts the stream items tagged backend "pbo" (-pbo flag);
// the solve-side accounting for them is the daemon's pboSolves /
// pboConflicts / pboPropagations counters in the Server block.
type summary struct {
	HTTPRequests       int           `json:"httpRequests"`
	Items              int           `json:"items"`
	Errors             int           `json:"errors"`
	Sheds              int           `json:"sheds"`
	Seconds            float64       `json:"seconds"`
	ItemsPerSec        float64       `json:"itemsPerSec"`
	ReqPerSec          float64       `json:"reqPerSec"`
	OfferedRepeatRatio float64       `json:"offeredRepeatRatio"`
	RelaxItems         int           `json:"relaxItems,omitempty"`
	RelaxHits          int           `json:"relaxHits,omitempty"`
	RelaxHitRate       float64       `json:"relaxHitRate,omitempty"`
	PBOItems           int           `json:"pboItems,omitempty"`
	LatencyMS          latency       `json:"latencyMs"`
	Churn              *churnSummary `json:"churn,omitempty"`
}

// report is the machine-readable shape `recload -json` emits — the serving
// counterpart of recbench's BENCH_*.json artifacts, archived by CI as
// BENCH_load.json (and, for overload runs, BENCH_overload.json).
type report struct {
	Title   string               `json:"title"`
	Config  config               `json:"config"`
	Summary summary              `json:"summary"`
	Restart *restartSummary      `json:"restart,omitempty"`
	Server  *serve.Stats         `json:"server,omitempty"`
	Cluster *cluster.RouterStats `json:"cluster,omitempty"`
}

// isShed says whether a request failed because the daemon shed it (HTTP
// 429 from admission control).
func isShed(err error) bool {
	var apiErr *serve.APIError
	return errors.As(err, &apiErr) && apiErr.Overloaded()
}

// run replays the stream: conc workers issue calls of batchSize items each
// (batchSize 1 → /v1/solve) and record per-call latency. With churn > 0 a
// mutation install is enqueued after every churn items, drawn by whichever
// worker gets there (installs serialize inside the churner, solve traffic
// keeps flowing around them — the mutate-while-solving shape the serving
// layer is built for).
func run(ctx context.Context, client *serve.Client, collection string,
	pool []experiments.WorkloadItem, stream []int, batchSize, conc int,
	timeout time.Duration, noCache bool, churn int, ch *churner) (*report, error) {

	type call struct {
		idxs   []int
		mutate bool
	}
	calls := make([]call, 0, (len(stream)+batchSize-1)/batchSize)
	sinceChurn := 0
	for at := 0; at < len(stream); at += batchSize {
		end := min(at+batchSize, len(stream))
		calls = append(calls, call{idxs: stream[at:end]})
		if ch != nil {
			sinceChurn += end - at
			for sinceChurn >= churn {
				sinceChurn -= churn
				calls = append(calls, call{mutate: true})
			}
		}
	}

	item := func(i int) serve.BatchItem {
		w := pool[i]
		return serve.BatchItem{Op: w.Op, Spec: w.Spec, Backend: w.Backend,
			Selection: w.Selection, Relax: w.Relax, MaxSuggestions: w.MaxSuggestions}
	}

	jobs := make(chan call)
	durs := make([]time.Duration, 0, len(calls))
	var mu sync.Mutex
	var items, errs, sheds, relaxItems, relaxHits int
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				if c.mutate {
					ch.install(ctx)
					continue
				}
				callStart := time.Now()
				// rxItems/rxHits tally the relaxation items among the
				// answered ones: offered count and how many the wire
				// reported as cache-served (deduped items inherit their
				// lead's cached flag, so they count the way the lead was
				// answered).
				var okItems, badItems, shedItems, rxItems, rxHits int
				if batchSize == 1 {
					req := item(c.idxs[0]).Request(collection)
					req.TimeoutMS = timeout.Milliseconds()
					req.NoCache = noCache
					if resp, err := client.Solve(ctx, req); err != nil {
						// A 429 is the daemon keeping its latency promise
						// under overload, not a failure: count it apart so
						// overload runs can assert sheds > 0 AND errors == 0.
						if isShed(err) {
							shedItems = 1
						} else {
							badItems = 1
						}
					} else {
						okItems = 1
						if isRelaxOp(req.Op) {
							rxItems = 1
							if resp.Cached {
								rxHits = 1
							}
						}
					}
				} else {
					breq := serve.BatchRequest{Collection: collection, TimeoutMS: timeout.Milliseconds(), NoCache: noCache}
					for _, i := range c.idxs {
						breq.Items = append(breq.Items, item(i))
					}
					resp, err := client.SolveBatch(ctx, breq)
					if err != nil {
						badItems = len(c.idxs)
					} else {
						for j, ir := range resp.Items {
							if ir.Error != "" {
								// Batch items carry their error as text;
								// shed items are recognizable by the
								// OverloadError message.
								if strings.Contains(ir.Error, "overloaded") {
									shedItems++
								} else {
									badItems++
								}
								continue
							}
							okItems++
							if isRelaxOp(pool[c.idxs[j]].Op) {
								rxItems++
								if ir.Cached {
									rxHits++
								}
							}
						}
					}
				}
				d := time.Since(callStart)
				mu.Lock()
				durs = append(durs, d)
				items += okItems
				errs += badItems
				sheds += shedItems
				relaxItems += rxItems
				relaxHits += rxHits
				mu.Unlock()
			}
		}()
	}
	for _, c := range calls {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start).Seconds()

	rep := &report{
		Title: "recload",
		Summary: summary{
			HTTPRequests: len(durs),
			Items:        items,
			Errors:       errs,
			Sheds:        sheds,
			Seconds:      wall,
			ItemsPerSec:  float64(items) / wall,
			ReqPerSec:    float64(len(durs)) / wall,
			LatencyMS:    summarize(durs),
			RelaxItems:   relaxItems,
			RelaxHits:    relaxHits,
		},
	}
	if relaxItems > 0 {
		rep.Summary.RelaxHitRate = float64(relaxHits) / float64(relaxItems)
	}
	return rep, nil
}

// pct reads the nearest-rank percentile from sorted samples.
func pct(sorted []float64, p float64) float64 {
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func render(rep *report) {
	s := rep.Summary
	fmt.Printf("recload: %d items in %.2fs over %d HTTP calls (batch=%d, c=%d, offeredRepeatRatio=%.2f): %.0f items/s, %.0f req/s, %d errors\n",
		s.Items+s.Errors, s.Seconds, s.HTTPRequests, rep.Config.Batch,
		rep.Config.Concurrency, s.OfferedRepeatRatio, s.ItemsPerSec, s.ReqPerSec, s.Errors)
	fmt.Printf("latency per HTTP call (ms): p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
		s.LatencyMS.P50, s.LatencyMS.P95, s.LatencyMS.P99, s.LatencyMS.Max)
	if s.Sheds > 0 {
		fmt.Printf("admission: %d items shed with 429 (back-pressure, not errors)\n", s.Sheds)
	}
	if cs := rep.Cluster; cs != nil {
		down := 0
		for _, n := range cs.Nodes {
			if n.Down {
				down++
			}
		}
		fmt.Printf("cluster: %d nodes (%d down), fanoutSolves=%d mergedPartials=%d versionRetries=%d failovers=%d\n",
			len(cs.Nodes), down, cs.FanoutSolves, cs.MergedPartials, cs.VersionRetries, cs.Failovers)
		fmt.Printf("cluster: replicaSyncs=%d recordsApplied=%d snapshots=%d fingerprintMismatches=%d\n",
			cs.ReplicaSyncs, cs.ReplicaRecords, cs.ReplicaSnapshots, cs.ReplicaFingerprintMismatches)
	}
	if rs := rep.Restart; rs != nil {
		fmt.Printf("restart: recovered in %.1fms, replayed %d WAL records, fingerprint match=%v\n",
			rs.RecoverMS, rs.Replayed, rs.Match)
	}
	if s.RelaxItems > 0 {
		fmt.Printf("relax traffic: %d items, %d cache-served (relaxHitRate=%.2f)\n",
			s.RelaxItems, s.RelaxHits, s.RelaxHitRate)
	}
	if s.PBOItems > 0 {
		fmt.Printf("pbo traffic: %d items", s.PBOItems)
		if st := rep.Server; st != nil {
			fmt.Printf("; server pboSolves=%d pboConflicts=%d pboPropagations=%d",
				st.PBOSolves, st.PBOConflicts, st.PBOPropagations)
		}
		fmt.Println()
	}
	if c := s.Churn; c != nil {
		fmt.Printf("churn: %d %s installs on %s (%d errors), install ms: p50=%.2f p95=%.2f max=%.2f\n",
			c.Installs, c.Mode, c.Relation, c.Errors,
			c.LatencyMS.P50, c.LatencyMS.P95, c.LatencyMS.Max)
	}
	if st := rep.Server; st != nil {
		fmt.Printf("server: hitRate=%.2f coalesced=%d batches=%d batchItems=%d batchDeduped=%d errors=%d\n",
			st.HitRate, st.Coalesced, st.Batches, st.BatchItems, st.BatchDeduped, st.Errors)
		fmt.Printf("server: deltas=%d deltaItems=%d snapshotsLive=%d prepares=%d\n",
			st.Deltas, st.DeltaItems, st.SnapshotsLive, st.EnginePrepares)
		if repaired := st.RepairRekeyed + st.RepairPatched; repaired+st.RepairResolved > 0 {
			fmt.Printf("repair: rekeyed=%d patched=%d resolved=%d (repair ratio %.2f)\n",
				st.RepairRekeyed, st.RepairPatched, st.RepairResolved,
				float64(repaired)/float64(repaired+st.RepairResolved))
		}
		fmt.Printf("engine: nodes=%d packages=%d pruned=%d boundEvals=%d sessionResumes=%d; server p50=%.2fms p99=%.2fms\n",
			st.EngineNodes, st.EnginePackages, st.EnginePruned, st.EngineBoundEvals,
			st.EngineSessionResumes, st.Latency.P50, st.Latency.P99)
	}
}
