package pkgrec

import (
	"encoding/json"
	"math"
	"testing"
)

func TestMetricSpecKinds(t *testing.T) {
	abs, err := MetricSpec{Kind: "absdiff"}.Build()
	if err != nil || abs.Fn(Int(3), Int(7)) != 4 {
		t.Fatalf("absdiff: %v %v", abs, err)
	}
	disc, err := MetricSpec{Kind: "discrete"}.Build()
	if err != nil || !math.IsInf(disc.Fn(Int(1), Int(2)), 1) {
		t.Fatalf("discrete: %v", err)
	}
	flip, err := MetricSpec{Kind: "boolflip"}.Build()
	if err != nil || flip.Fn(Int(0), Int(1)) != 1 {
		t.Fatalf("boolflip: %v", err)
	}
	table, err := MetricSpec{Kind: "table", Entries: map[string]float64{"nyc|ewr": 12}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if table.Fn(Str("nyc"), Str("ewr")) != 12 || table.Fn(Str("ewr"), Str("nyc")) != 12 {
		t.Fatal("table metric not symmetric")
	}
	if _, err := (MetricSpec{Kind: "nope"}).Build(); err == nil {
		t.Fatal("unknown metric kind should error")
	}
	if _, err := (MetricSpec{Kind: "table", Entries: map[string]float64{"nokey": 1}}).Build(); err == nil {
		t.Fatal("malformed table key should error")
	}
}

func TestRelaxSpecEndToEnd(t *testing.T) {
	db := NewDatabase()
	db.Add(FromTuples(NewSchema("flight", "from", "to", "price"),
		NewTuple(Str("edi"), Str("ewr"), Int(420))))
	q, err := ParseQuery(`RQ(p) :- flight("edi", "nyc", p).`)
	if err != nil {
		t.Fatal(err)
	}
	prob := &Problem{DB: db, Q: q, Cost: CountOrInf(), Val: Count(), Budget: 1, K: 1}

	raw := `{
		"points": [{"index": 1, "metric": {"kind": "table", "entries": {"nyc|ewr": 12}}}],
		"bound": 1,
		"gapBudget": 15
	}`
	var spec RelaxSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		t.Fatal(err)
	}
	inst, err := spec.Build(prob)
	if err != nil {
		t.Fatal(err)
	}
	rel, ok, err := RelaxQuery(inst)
	if err != nil || !ok {
		t.Fatalf("RelaxQuery: ok=%v err=%v", ok, err)
	}
	if rel.Gap != 12 {
		t.Fatalf("gap = %g, want 12", rel.Gap)
	}
}

func TestRelaxSpecBadIndex(t *testing.T) {
	db := NewDatabase()
	db.Add(FromTuples(NewSchema("R", "a"), NewTuple(Int(1))))
	q, err := ParseQuery(`RQ(x) :- R(x).`)
	if err != nil {
		t.Fatal(err)
	}
	prob := &Problem{DB: db, Q: q, Cost: Count(), Val: Count(), Budget: 1, K: 1}
	spec := RelaxSpec{Points: []RelaxPointSpec{{Index: 9, Metric: MetricSpec{Kind: "absdiff"}}}}
	if _, err := spec.Build(prob); err == nil {
		t.Fatal("out-of-range point index should error")
	}
}

func TestGroupFacade(t *testing.T) {
	db := facadeDB()
	q, err := ParseQuery(`RQ(id, price, rating) :- item(id, price, rating).`)
	if err != nil {
		t.Fatal(err)
	}
	base := &Problem{DB: db, Q: q, Cost: CountOrInf(), Val: ConstAgg(0), Budget: 1, K: 1}
	users := []Aggregator{SumAttr(2), NegSumAttr(1)}
	for _, sem := range []GroupSemantics{LeastMisery, AverageSatisfaction, AverageMinusDisagreement} {
		g, err := GroupProblem(base, users, sem, 0.2)
		if err != nil {
			t.Fatalf("%v: %v", sem, err)
		}
		if _, ok, err := FindTopK(g); err != nil || !ok {
			t.Fatalf("%v: FindTopK ok=%v err=%v", sem, ok, err)
		}
	}
	if _, err := GroupVal(nil, LeastMisery, 0); err == nil {
		t.Fatal("empty group should error")
	}
}

func TestAdjustSpecBuild(t *testing.T) {
	db := facadeDB()
	q, err := ParseQuery(`RQ(id, price, rating) :- item(id, price, rating).`)
	if err != nil {
		t.Fatal(err)
	}
	prob := &Problem{DB: db, Q: q, Cost: CountOrInf(), Val: ConstAgg(1), Budget: 1, K: 4}
	extra := NewDatabase()
	extra.Add(FromTuples(NewSchema("item", "id", "price", "rating"),
		NewTuple(Int(9), Int(5), Int(7))))
	inst := AdjustSpec{Bound: 1, KPrime: 1}.Build(prob, extra)
	delta, ok, err := AdjustItems(inst)
	if err != nil || !ok {
		t.Fatalf("AdjustItems: ok=%v err=%v", ok, err)
	}
	// Three items exist; k = 4 singletons require inserting the extra item.
	if delta.Size() != 1 {
		t.Fatalf("delta = %v, want one insertion", delta)
	}
}
