package pkgrec

import (
	"encoding/json"
	"testing"
)

// facadeDB builds a small item store through the public API.
func facadeDB() *Database {
	db := NewDatabase()
	db.Add(FromTuples(NewSchema("item", "id", "price", "rating"),
		NewTuple(Int(1), Int(10), Int(5)),
		NewTuple(Int(2), Int(20), Int(8)),
		NewTuple(Int(3), Int(30), Int(9))))
	return db
}

func TestFacadeEndToEnd(t *testing.T) {
	db := facadeDB()
	q, err := ParseQuery(`RQ(id, price, rating) :- item(id, price, rating).`)
	if err != nil {
		t.Fatal(err)
	}
	prob := &Problem{
		DB: db, Q: q,
		Cost: SumAttr(1).WithMonotone(), Val: SumAttr(2),
		Budget: 30, K: 2,
	}
	sel, ok, err := FindTopK(prob)
	if err != nil || !ok {
		t.Fatalf("FindTopK: ok=%v err=%v", ok, err)
	}
	accept, witness, err := DecideTopK(prob, sel)
	if err != nil || !accept {
		t.Fatalf("DecideTopK rejected its own optimum (witness %v, err %v)", witness, err)
	}
	b, ok, err := MaxBound(prob)
	if err != nil || !ok {
		t.Fatalf("MaxBound: ok=%v err=%v", ok, err)
	}
	isMax, err := IsMaxBound(prob, b)
	if err != nil || !isMax {
		t.Fatalf("IsMaxBound(%g) = %v, %v", b, isMax, err)
	}
	n, err := CountValid(prob, b)
	if err != nil || n < int64(prob.K) {
		t.Fatalf("CountValid(%g) = %d, want >= %d", b, n, prob.K)
	}
}

// TestFacadeParallelEngine exercises the parallel entry points through the
// public API and checks they agree with the serial ones.
func TestFacadeParallelEngine(t *testing.T) {
	db := facadeDB()
	q, err := ParseQuery(`RQ(id, price, rating) :- item(id, price, rating).`)
	if err != nil {
		t.Fatal(err)
	}
	prob := &Problem{
		DB: db, Q: q,
		Cost: SumAttr(1).WithMonotone(), Val: SumAttr(2),
		Budget: 30, K: 2,
	}
	sel, ok, err := FindTopK(prob)
	if err != nil || !ok {
		t.Fatalf("FindTopK: ok=%v err=%v", ok, err)
	}
	selP, okP, err := FindTopKParallel(prob, 3)
	if err != nil || okP != ok || len(selP) != len(sel) {
		t.Fatalf("FindTopKParallel: ok=%v n=%d err=%v", okP, len(selP), err)
	}
	for i := range sel {
		if !sel[i].Equal(selP[i]) {
			t.Fatalf("rank %d: parallel %v vs serial %v", i, selP[i], sel[i])
		}
	}
	accept, witness, err := DecideTopKParallel(prob, sel, 3)
	if err != nil || !accept {
		t.Fatalf("DecideTopKParallel rejected the optimum (witness %v, err %v)", witness, err)
	}
	nSeq, err := CountValid(prob, 0)
	if err != nil {
		t.Fatal(err)
	}
	nPar, err := CountValidParallel(prob, 0, 3)
	if err != nil || nPar != nSeq {
		t.Fatalf("CountValidParallel = %d, serial %d (err %v)", nPar, nSeq, err)
	}
	feas, err := ExistsKValid(prob, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	feasP, err := ExistsKValidParallel(prob, 2, 0, 3)
	if err != nil || feasP != feas {
		t.Fatalf("ExistsKValidParallel = %v, serial %v (err %v)", feasP, feas, err)
	}
}

func TestFacadeItems(t *testing.T) {
	db := facadeDB()
	q, err := ParseQuery(`RQ(id, price, rating) :- item(id, price, rating).`)
	if err != nil {
		t.Fatal(err)
	}
	f := Utility(func(t Tuple) float64 { return t[2].Float64() })
	items, ok, err := TopKItems(db, q, f, 2)
	if err != nil || !ok {
		t.Fatalf("TopKItems: ok=%v err=%v", ok, err)
	}
	if items[0][0].Int64() != 3 || items[1][0].Int64() != 2 {
		t.Fatalf("top items = %v", items)
	}
	// The Section 2 embedding through the facade.
	ip := ItemProblem(db, q, f, 2)
	sel, ok, err := FindTopK(ip)
	if err != nil || !ok {
		t.Fatalf("embedded FindTopK: ok=%v err=%v", ok, err)
	}
	if !sel[0].Tuples()[0].Equal(items[0]) {
		t.Fatalf("embedding mismatch: %v vs %v", sel[0], items[0])
	}
}

func TestFacadeRelaxAndAdjust(t *testing.T) {
	db := NewDatabase()
	db.Add(FromTuples(NewSchema("flight", "from", "to", "price"),
		NewTuple(Str("edi"), Str("ewr"), Int(420))))
	q, err := ParseQuery(`RQ(p) :- flight("edi", "nyc", p).`)
	if err != nil {
		t.Fatal(err)
	}
	prob := &Problem{DB: db, Q: q, Cost: CountOrInf(), Val: Count(), Budget: 1, K: 1}

	points, err := RelaxPoints(q)
	if err != nil {
		t.Fatal(err)
	}
	city := TableMetric("citydist", map[[2]string]float64{{"nyc", "ewr"}: 12})
	var pts []RelaxPoint
	for _, p := range points {
		pts = append(pts, p.WithMetric(city))
	}
	rel, ok, err := RelaxQuery(RelaxInstance{Problem: prob, Points: pts, Bound: 1, GapBudget: 15})
	if err != nil || !ok {
		t.Fatalf("RelaxQuery: ok=%v err=%v", ok, err)
	}
	if rel.Gap != 12 {
		t.Fatalf("relaxation gap = %g, want 12", rel.Gap)
	}

	extra := NewDatabase()
	extra.Add(FromTuples(NewSchema("flight", "from", "to", "price"),
		NewTuple(Str("edi"), Str("nyc"), Int(700))))
	delta, ok, err := AdjustItems(AdjustInstance{Problem: prob, Extra: extra, Bound: 1, KPrime: 1})
	if err != nil || !ok {
		t.Fatalf("AdjustItems: ok=%v err=%v", ok, err)
	}
	if delta.Size() != 1 {
		t.Fatalf("adjustment size = %d, want 1", delta.Size())
	}
}

func TestAggSpecKinds(t *testing.T) {
	pkg := NewPackage(NewTuple(Int(1), Int(4)), NewTuple(Int(2), Int(6)))
	cases := []struct {
		spec AggSpec
		want float64
	}{
		{AggSpec{Kind: "count"}, 2},
		{AggSpec{Kind: "countOrInf"}, 2},
		{AggSpec{Kind: "sum", Attr: 1}, 10},
		{AggSpec{Kind: "negsum", Attr: 1}, -10},
		{AggSpec{Kind: "min", Attr: 1}, 4},
		{AggSpec{Kind: "max", Attr: 1}, 6},
		{AggSpec{Kind: "avg", Attr: 1}, 5},
		{AggSpec{Kind: "const", Value: 7}, 7},
	}
	for _, c := range cases {
		a, err := c.spec.Build()
		if err != nil {
			t.Fatalf("%+v: %v", c.spec, err)
		}
		if got := a.Eval(pkg); got != c.want {
			t.Errorf("%+v: Eval = %g, want %g", c.spec, got, c.want)
		}
	}
	if _, err := (AggSpec{Kind: "nope"}).Build(); err == nil {
		t.Fatal("unknown aggregator kind should error")
	}
	mono, err := (AggSpec{Kind: "sum", Attr: 1, Monotone: true}).Build()
	if err != nil || !mono.Monotone() {
		t.Fatal("monotone flag not honoured")
	}
}

func TestProblemSpecJSON(t *testing.T) {
	raw := `{
		"query": "RQ(id, price, rating) :- item(id, price, rating).",
		"qc": "Qc() :- RQ(a, p1, r1), RQ(b, p2, r2), a != b, p1 = p2.",
		"cost": {"kind": "sum", "attr": 1, "monotone": true},
		"val": {"kind": "sum", "attr": 2},
		"budget": 30,
		"k": 1,
		"bound": 5
	}`
	var spec ProblemSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		t.Fatal(err)
	}
	prob, err := spec.Build(facadeDB())
	if err != nil {
		t.Fatal(err)
	}
	sel, ok, err := FindTopK(prob)
	if err != nil || !ok {
		t.Fatalf("FindTopK: ok=%v err=%v", ok, err)
	}
	if prob.Val.Eval(sel[0]) < spec.Bound {
		t.Fatalf("top package rated %g, below the spec bound", prob.Val.Eval(sel[0]))
	}
}

func TestProblemSpecErrors(t *testing.T) {
	cases := []ProblemSpec{
		{Query: "", Cost: AggSpec{Kind: "count"}, Val: AggSpec{Kind: "count"}},
		{Query: "RQ(x) :- item(x).", Cost: AggSpec{Kind: "nope"}, Val: AggSpec{Kind: "count"}},
		{Query: "RQ(x) :- item(x).", Qc: "broken(", Cost: AggSpec{Kind: "count"}, Val: AggSpec{Kind: "count"}},
		{Query: "RQ(z) :- item(x, p, r).", Cost: AggSpec{Kind: "count"}, Val: AggSpec{Kind: "count"}}, // unsafe head
	}
	for i, spec := range cases {
		if _, err := spec.Build(facadeDB()); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
