// Team reproduces the team formation setting of Lappas et al. ([23] in the
// paper): assemble expert teams under a salary budget, avoiding pairs of
// experts that conflict (a CQ compatibility constraint joining the package
// relation with the conflict graph), ranked by skill coverage plus
// individual ratings.
package main

import (
	"fmt"
	"log"

	pkgrec "repro"
	"repro/internal/gen"
)

func main() {
	db := gen.Team(5, 12, 0.15)

	q, err := pkgrec.ParseQuery(`RQ(eid, skill, cost, rating) :- expert(eid, skill, cost, rating).`)
	if err != nil {
		log.Fatal(err)
	}
	// Compatibility: no two teammates may conflict.
	qc, err := pkgrec.ParseQuery(`
		Qc() :- RQ(a, s1, c1, r1), RQ(b, s2, c2, r2), conflict(a, b).`)
	if err != nil {
		log.Fatal(err)
	}

	// val(N): 10 points per distinct skill covered plus the summed ratings
	// — an arbitrary PTIME aggregate, as the model allows.
	val := pkgrec.AggFunc("coverage", func(n pkgrec.Package) float64 {
		skills := map[string]struct{}{}
		var rating float64
		for _, t := range n.Tuples() {
			skills[t[1].Text()] = struct{}{}
			rating += t[3].Float64()
		}
		return float64(len(skills))*10 + rating
	})

	prob := &pkgrec.Problem{
		DB:     db,
		Q:      q,
		Qc:     qc,
		Cost:   pkgrec.SumAttr(2).WithMonotone(), // total salary
		Val:    val,
		Budget: 150,
		K:      3,
	}
	sel, ok, err := pkgrec.FindTopK(prob)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		fmt.Println("no top-3 team selection under the budget")
		return
	}
	for i, team := range sel {
		fmt.Printf("team #%d: score %.0f, salary %.0f\n",
			i+1, val.Eval(team), prob.Cost.Eval(team))
		for _, t := range team.Tuples() {
			fmt.Printf("  expert %v (%v, cost %v, rating %v)\n", t[0], t[1], t[2], t[3])
		}
	}

	// The same instance with a fixed team size (Corollary 6.1's constant
	// bound): pairs only.
	pairs := prob.WithMaxSize(2)
	psel, ok, err := pkgrec.FindTopK(pairs)
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		fmt.Printf("\nbest pair under Bp = 2: score %.0f: %v\n", val.Eval(psel[0]), psel[0])
	}
}
