// Travelrelax reproduces Example 7.1 (query relaxation) and the adjustment
// recommendation of Section 8 on the same data: there is no direct
// edi → nyc flight, so QRPP recommends relaxing the destination within 15
// miles (finding Newark), and ARPP recommends the vendor add a direct
// flight from the extra collection D′.
package main

import (
	"fmt"
	"log"

	pkgrec "repro"
	"repro/internal/gen"
)

func main() {
	db := gen.Travel(11, 25, 10)

	q, err := pkgrec.ParseQuery(`Q(f, price) :- flight(f, "edi", "nyc", d, price, dur).`)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := q.Eval(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct edi -> nyc flights: %d (the user gets no recommendation)\n", ans.Len())

	// ---- Query relaxation recommendation (Section 7) ----
	prob := &pkgrec.Problem{
		DB: db, Q: q,
		Cost: pkgrec.CountOrInf(), Val: pkgrec.Count(), Budget: 1, K: 1,
	}
	points, err := pkgrec.RelaxPoints(q)
	if err != nil {
		log.Fatal(err)
	}
	city := pkgrec.TableMetric("citydist", gen.CityDistances())
	var chosen []pkgrec.RelaxPoint
	for _, p := range points {
		chosen = append(chosen, p.WithMetric(city))
	}
	rel, ok, err := pkgrec.RelaxQuery(pkgrec.RelaxInstance{
		Problem:   prob,
		Points:    chosen,
		Bound:     1,  // at least one flight in a package
		GapBudget: 15, // the user accepts cities within 15 miles
	})
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		fmt.Println("QRPP: no relaxation within gap 15")
	} else {
		fmt.Printf("QRPP: relax with gap %.0f miles; relaxed query:\n  %s\n", rel.Gap, rel.Query)
		relAns, err := rel.Query.Eval(db)
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range relAns.Tuples() {
			fmt.Printf("  reachable flight: fno %v, $%v\n", t[0], t[1])
		}
	}

	// ---- Adjustment recommendation (Section 8) ----
	// The vendor's candidate additions D′: two direct edi → nyc flights.
	extra := pkgrec.NewDatabase()
	extra.Add(pkgrec.FromTuples(
		pkgrec.NewSchema("flight", "fno", "from", "to", "date", "price", "duration"),
		pkgrec.NewTuple(pkgrec.Int(900), pkgrec.Str("edi"), pkgrec.Str("nyc"),
			pkgrec.Int(1), pkgrec.Int(640), pkgrec.Int(420)),
		pkgrec.NewTuple(pkgrec.Int(901), pkgrec.Str("edi"), pkgrec.Str("nyc"),
			pkgrec.Int(2), pkgrec.Int(580), pkgrec.Int(430))))

	delta, ok, err := pkgrec.AdjustItems(pkgrec.AdjustInstance{
		Problem: prob,
		Extra:   extra,
		Bound:   1,
		KPrime:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		fmt.Println("ARPP: no adjustment within k' = 1")
		return
	}
	fmt.Printf("ARPP: minimal adjustment %v (|delta| = %d)\n", delta, delta.Size())
}
