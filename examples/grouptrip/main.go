// Grouptrip demonstrates the group recommendation extension the paper's
// conclusion points to (Section 9, citing Amer-Yahia et al. [5]): a family
// of three plans a day of nyc sightseeing; each member rates POI types
// differently, and the system recommends packages under least-misery and
// average-satisfaction semantics — two different consensus functions over
// the same package model, so RPP/FRP/MBP/CPP apply unchanged.
package main

import (
	"fmt"
	"log"

	pkgrec "repro"
	"repro/internal/gen"
)

// tastes maps POI types to a user's per-visit enjoyment.
func taste(prefs map[string]float64) pkgrec.Aggregator {
	return pkgrec.AggFunc("taste", func(n pkgrec.Package) float64 {
		var s float64
		for _, t := range n.Tuples() {
			s += prefs[t[1].Text()]
		}
		return s
	})
}

func main() {
	db := gen.Travel(13, 10, 30)

	q, err := pkgrec.ParseQuery(`
		RQ(name, type, ticket, time) :- poi(name, "nyc", type, ticket, time).`)
	if err != nil {
		log.Fatal(err)
	}
	base := &pkgrec.Problem{
		DB: db, Q: q,
		Cost:   pkgrec.SumAttr(3).WithMonotone(), // total visiting time
		Budget: 360,                              // six hours
		Val:    pkgrec.ConstAgg(0),               // replaced per group semantics
		K:      1,
	}

	users := []pkgrec.Aggregator{
		taste(map[string]float64{"museum": 5, "gallery": 4, "park": 1, "theater": 2, "landmark": 2}),
		taste(map[string]float64{"museum": 1, "gallery": 1, "park": 5, "theater": 4, "landmark": 3}),
		taste(map[string]float64{"museum": 3, "gallery": 2, "park": 3, "theater": 3, "landmark": 3}),
	}

	for _, sem := range []pkgrec.GroupSemantics{
		pkgrec.LeastMisery, pkgrec.AverageSatisfaction, pkgrec.AverageMinusDisagreement,
	} {
		prob, err := pkgrec.GroupProblem(base, users, sem, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		sel, ok, err := pkgrec.FindTopK(prob)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Printf("%v: no feasible package\n", sem)
			continue
		}
		fmt.Printf("\n%v: group rating %.1f, visiting time %.0f min\n",
			sem, prob.Val.Eval(sel[0]), prob.Cost.Eval(sel[0]))
		for _, t := range sel[0].Tuples() {
			fmt.Printf("  %v (%v, %v min)\n", t[0], t[1], t[3])
		}
		for ui, u := range users {
			fmt.Printf("  user %d satisfaction: %.0f\n", ui+1, u.Eval(sel[0]))
		}
	}
}
