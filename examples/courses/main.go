// Courses reproduces the course package recommendation setting of
// Parameswaran et al. ([27, 28] in the paper): recommend course packages
// under a credit budget whose prerequisites are all included — the
// compatibility constraint is a first-order query with negation over the
// package relation RQ — and show a recursive DATALOG "degree audit" query
// computing the transitive prerequisites of a target course.
package main

import (
	"fmt"
	"log"

	pkgrec "repro"
	"repro/internal/gen"
)

func main() {
	db := gen.Courses(21, 10, 2)

	// A recursive DATALOG query: the transitive prerequisites of the
	// highest-numbered course that has prerequisites.
	target := int64(0)
	for _, t := range db.Relation("prereq").Tuples() {
		if t[0].Int64() > target {
			target = t[0].Int64()
		}
	}
	audit, err := pkgrec.ParseQuery(fmt.Sprintf(`
		Req(c) :- prereq(%d, c).
		Req(c) :- Req(d), prereq(d, c).`, target))
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := audit.Eval(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degree audit (DATALOG, language %v): course %d transitively requires %d courses: %v\n",
		audit.Language(), target, reqs.Len(), reqs)

	// Selection criteria: all courses. Compatibility: an FO query (with
	// negation) that flags a package containing a course whose direct
	// prerequisite is missing — applied package-wide this closes the
	// requirement transitively.
	q, err := pkgrec.ParseQuery(`RQ(cid, credits, rating) :- course(cid, credits, rating).`)
	if err != nil {
		log.Fatal(err)
	}
	qc, err := pkgrec.ParseQuery(`
		Qc() := exists c, cr, rt, r (
			RQ(c, cr, rt) & prereq(c, r) &
			!(exists cr2, rt2 (RQ(r, cr2, rt2)))).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compatibility constraint language: %v\n", qc.Language())

	prob := &pkgrec.Problem{
		DB:     db,
		Q:      q,
		Qc:     qc,
		Cost:   pkgrec.SumAttr(1).WithMonotone(), // total credits
		Val:    pkgrec.SumAttr(2),                // total rating
		Budget: 9,                                // credit cap
		K:      2,
	}
	sel, ok, err := pkgrec.FindTopK(prob)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		fmt.Println("no top-2 selection of prerequisite-closed course packages")
		return
	}
	for i, n := range sel {
		fmt.Printf("\ncourse package #%d: rating %.0f, credits %.0f\n",
			i+1, prob.Val.Eval(n), prob.Cost.Eval(n))
		for _, t := range n.Tuples() {
			fmt.Printf("  course %v (%v credits, rating %v)\n", t[0], t[1], t[2])
		}
	}

	// Every recommended package must be prerequisite-closed; check one
	// explicitly through the public API.
	okPkg, err := prob.Compatible(sel[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprerequisite closure verified for package #1: %v\n", okPkg)
}
