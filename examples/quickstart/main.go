// Quickstart reproduces Example 1.1 of the paper: recommend top-3 travel
// packages. Items are (flight, POI) pairs joining direct flights out of
// Edinburgh with points of interest at the destination; a package must use
// a single flight and visit at most two museums (compatibility constraints
// expressed as a UCQ over the package relation RQ); the cost budget caps
// total visiting time; packages are ranked by (negated) total price.
package main

import (
	"fmt"
	"log"

	pkgrec "repro"
	"repro/internal/gen"
)

func main() {
	db := gen.Travel(7, 30, 24)

	// Selection criteria Q: direct flights from edi paired with POIs at the
	// destination city (Example 1.1's conjunctive query).
	q, err := pkgrec.ParseQuery(`
		RQ(f, price, name, type, ticket, time) :-
			flight(f, "edi", city, d, price, dur),
			poi(name, city, type, ticket, time).`)
	if err != nil {
		log.Fatal(err)
	}

	// Compatibility constraints Qc as a union of conjunctive queries:
	// (1) all items share one flight; (2) at most two museums.
	qc, err := pkgrec.ParseQuery(`
		Qc() :- RQ(f1, p1, n1, t1, k1, m1), RQ(f2, p2, n2, t2, k2, m2), f1 != f2.
		Qc() :- RQ(f, p, n1, "museum", k1, m1),
		        RQ(f, p, n2, "museum", k2, m2),
		        RQ(f, p, n3, "museum", k3, m3),
		        n1 != n2, n1 != n3, n2 != n3.`)
	if err != nil {
		log.Fatal(err)
	}

	// cost(N): total visiting time (attribute 5), budget C = 8 hours.
	// val(N): the lower the flight price plus total tickets, the higher the
	// rating — the aggregate of Example 1.1.
	val := pkgrec.AggFunc("negTotalPrice", func(n pkgrec.Package) float64 {
		if n.IsEmpty() {
			return 0
		}
		total := n.Tuples()[0][1].Float64() // shared flight price
		for _, t := range n.Tuples() {
			total += t[4].Float64() // ticket
		}
		return -total
	})

	prob := &pkgrec.Problem{
		DB:     db,
		Q:      q,
		Qc:     qc,
		Cost:   pkgrec.SumAttr(5).WithMonotone(),
		Val:    val,
		Budget: 480,
		K:      3,
	}

	cands, err := prob.Candidates()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("items matching Q(D): %d\n", cands.Len())

	sel, ok, err := pkgrec.FindTopK(prob)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		fmt.Println("no top-3 selection exists (fewer than 3 valid packages)")
		return
	}
	for i, n := range sel {
		fmt.Printf("\npackage #%d  rating %.0f  visiting time %.0f min\n",
			i+1, val.Eval(n), prob.Cost.Eval(n))
		for _, t := range n.Tuples() {
			fmt.Printf("  flight %v ($%v) -> %v (%v, ticket $%v, %v min)\n",
				t[0], t[1], t[2], t[3], t[4], t[5])
		}
	}

	// RPP: the engine's own answer must verify as a top-k selection.
	accept, witness, err := pkgrec.DecideTopK(prob, sel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRPP check: selection verified = %v (witness: %v)\n", accept, witness)

	// MBP and CPP on the same instance.
	b, _, err := pkgrec.MaxBound(prob)
	if err != nil {
		log.Fatal(err)
	}
	count, err := pkgrec.CountValid(prob, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MBP: maximum rating bound B = %.0f; CPP: %d valid packages rated >= B\n", b, count)
}
