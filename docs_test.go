package pkgrec_test

// Documentation link and symbol checker, run by `go test` and by the CI
// docs job: every relative markdown link in the top-level documents and
// docs/ must resolve to an existing file, and every backtick-quoted
// `pkg.Symbol` reference must name a declaration that actually exists in
// that package — so the prose cannot silently drift from the code it
// describes.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles returns the markdown files under the checker's contract.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "ARCHITECTURE.md", "BENCHMARKS.md"}
	more, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	return append(files, more...)
}

// mdLink matches [text](target); targets with a URL scheme or pure
// fragments are skipped.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func TestDocsRelativeLinksResolve(t *testing.T) {
	for _, md := range docFiles(t) {
		body, err := os.ReadFile(md)
		if err != nil {
			t.Fatalf("%s: %v", md, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: link %q does not resolve (%s)", md, m[1], resolved)
			}
		}
	}
}

// docPackages maps the package names documentation prose uses to their
// source directories.
var docPackages = map[string]string{
	"pkgrec":      ".",
	"core":        "internal/core",
	"relation":    "internal/relation",
	"query":       "internal/query",
	"parser":      "internal/parser",
	"relax":       "internal/relax",
	"adjust":      "internal/adjust",
	"spec":        "internal/spec",
	"serve":       "internal/serve",
	"cluster":     "internal/cluster",
	"boolenc":     "internal/boolenc",
	"sat":         "internal/sat",
	"pbo":         "internal/pbo",
	"reductions":  "internal/reductions",
	"experiments": "internal/experiments",
	"gen":         "internal/gen",
}

// codeSpan matches inline code spans; symbol references are only checked
// inside them (prose like "Deng, Fan and Geerts" stays out of scope).
var (
	codeSpan = regexp.MustCompile("`[^`\n]+`")
	// symbolRef matches pkg.Ident or pkg.Ident.Ident with exported idents.
	symbolRef = regexp.MustCompile(`\b([a-z][a-z0-9]*)\.([A-Z][A-Za-z0-9_]*)(?:\.([A-Z][A-Za-z0-9_]*))?`)
)

// packageDecls collects the exported top-level identifiers of one package
// directory, plus its method and struct-field names (matched loosely:
// documentation writes `serve.Options.CacheSize` and
// `core.Problem.DecideTopK`).
func packageDecls(t *testing.T, dir string) (decls, members map[string]bool) {
	t.Helper()
	decls, members = map[string]bool{}, map[string]bool{}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parsing %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					if d.Recv != nil {
						members[d.Name.Name] = true
					} else {
						decls[d.Name.Name] = true
					}
				case *ast.GenDecl:
					for _, sp := range d.Specs {
						switch sp := sp.(type) {
						case *ast.TypeSpec:
							decls[sp.Name.Name] = true
							if st, ok := sp.Type.(*ast.StructType); ok {
								for _, fld := range st.Fields.List {
									for _, name := range fld.Names {
										members[name.Name] = true
									}
								}
							}
						case *ast.ValueSpec:
							for _, name := range sp.Names {
								decls[name.Name] = true
							}
						}
					}
				}
			}
		}
	}
	return decls, members
}

func TestDocsGoSymbolsExist(t *testing.T) {
	type table struct{ decls, members map[string]bool }
	cache := map[string]table{}
	lookup := func(pkg string) (table, bool) {
		dir, ok := docPackages[pkg]
		if !ok {
			return table{}, false
		}
		tb, ok := cache[pkg]
		if !ok {
			d, m := packageDecls(t, dir)
			tb = table{decls: d, members: m}
			cache[pkg] = tb
		}
		return tb, true
	}

	for _, md := range docFiles(t) {
		body, err := os.ReadFile(md)
		if err != nil {
			t.Fatalf("%s: %v", md, err)
		}
		for _, span := range codeSpan.FindAllString(string(body), -1) {
			for _, m := range symbolRef.FindAllStringSubmatch(span, -1) {
				pkg, sym, member := m[1], m[2], m[3]
				tb, known := lookup(pkg)
				if !known {
					continue // not a package reference (e.g. a filename)
				}
				if !tb.decls[sym] {
					t.Errorf("%s: %s references %s.%s, but package %s declares no %s",
						md, span, pkg, sym, pkg, sym)
					continue
				}
				if member != "" && !tb.members[member] && !tb.decls[member] {
					t.Errorf("%s: %s references %s.%s.%s, but nothing in %s is named %s",
						md, span, pkg, sym, member, pkg, member)
				}
			}
		}
	}
}
